"""The ViFi protocol engines: vehicle and basestation nodes.

This module implements the five-step protocol of Section 4.3 plus its
supporting machinery:

1. src transmits the packet P.
2. If dst receives P, it broadcasts an ACK.
3. If an auxiliary overhears P, but within a small window has not
   heard an ACK, it probabilistically relays P.
4. If dst receives relayed P and has not already sent an ACK, it
   broadcasts an ACK.
5. If src does not receive an ACK within a retransmission interval,
   it retransmits P.

Upstream relays ride the inter-BS backplane; downstream relays ride the
vehicle-BS wireless channel.  A packet is considered for relaying only
once, and relayed copies are never re-relayed.

The source logic (queueing, adaptive retransmission, bitmap-ack
processing, one-frame-at-the-interface pacing) is shared between the
vehicle (upstream) and the anchor BS (downstream) via
:class:`LinkSender`.
"""

import heapq
import itertools
import math
from collections import deque
from dataclasses import dataclass, field

from repro.core.relaying import RelayContext
from repro.net.packet import Ack, Beacon, DataPacket, Direction, FrameKind

__all__ = ["BasestationNode", "BeaconSlotter", "LinkSender", "VehicleNode"]

#: Number of recently received pkt_ids remembered per peer for
#: de-duplication and bitmap construction.
_RECEIVE_MEMORY = 512

# Frame-kind members bound at module level: reception dispatch runs for
# every delivered frame.
_BEACON = FrameKind.BEACON
_DATA = FrameKind.DATA
_ACK = FrameKind.ACK


class BeaconSlotter:
    """Slot-aligned batching of every node's beacon timer.

    With a dozen nodes beaconing ten times a second, per-node timers
    are the single largest source of heap events in a protocol run.
    The slotter keeps each node's *nominal* due time (phase, then
    ``due += interval + jitter``, drawn from the node's own stream
    exactly as the per-node timers drew it) in one priority queue and
    arms a single fire-and-forget event per occupied slot: when it
    fires, every beacon due up to that slot boundary is emitted in due
    order.

    Fidelity: due times are computed from the nominal chain, never from
    the aligned emission times, so beacon *rates* — the estimator's
    denominators — are exactly those of per-node timers; each emission
    is merely delayed to the next multiple of ``slot_s`` (at most one
    slot, default 20 ms against a 100 ms beacon interval).  Setting
    ``slot_s=0`` in the config restores per-node timers.

    With a *medium* attached, a slot's emissions are handed to
    :meth:`~repro.net.medium.WirelessMedium.send_slot_batch` as one
    batch: when the medium is idle and every emitter is free, the
    whole slot claims consecutive airtimes, costs a single heap event,
    and resolves through one stacked numpy pass (falling back to
    per-frame sends — bitwise-identical to the no-medium path —
    whenever those conditions fail).  Without a medium each node emits
    through its own :meth:`_emit_beacon`, the historical path kept
    verbatim.
    """

    def __init__(self, sim, slot_s, medium=None):
        self.sim = sim
        self.slot = float(slot_s)
        self.medium = medium
        self._heap = []  # (nominal due, seq, node)
        self._seq = itertools.count()
        self._next_fire_at = None

    def add(self, node, first_due):
        """Register *node*; its first beacon is due at *first_due*."""
        heapq.heappush(self._heap, (float(first_due), next(self._seq),
                                    node))
        self._arm(self._slot_after(first_due))

    def _slot_after(self, due):
        """The emission slot for a nominal due time (never earlier)."""
        slot = self.slot
        aligned = math.ceil(due / slot) * slot
        return aligned if aligned >= due else aligned + slot

    def _arm(self, at):
        """Ensure a fire event exists at *at* or earlier.

        A node registered after the slotter armed may be due before
        the armed slot; an extra earlier event is scheduled and the
        superseded one becomes a no-op (see :meth:`_fire`).
        """
        nxt = self._next_fire_at
        if nxt is not None and nxt <= at:
            return
        self._next_fire_at = at
        self.sim.schedule_fire_at(at, self._fire)

    def _fire(self):
        now = self.sim.now
        nxt = self._next_fire_at
        if nxt is None or now < nxt:
            return  # superseded: an earlier fire already served us
        self._next_fire_at = None
        heap = self._heap
        push, pop = heapq.heappush, heapq.heappop
        medium = self.medium
        if medium is None:
            while heap and heap[0][0] <= now:
                due, _, node = pop(heap)
                next_due = node._emit_beacon(due)
                push(heap, (next_due, next(self._seq), node))
        else:
            # Build every due beacon first (builds draw no randomness
            # and read only the emitter's own state, so batch-building
            # is bit-identical to build-and-send interleaving), then
            # offer the slot to the medium as one batch.
            batch = []
            while heap and heap[0][0] <= now:
                due, _, node = pop(heap)
                batch.append((node.node_id, node._build_beacon()))
                push(heap, (node._next_beacon_due(due),
                            next(self._seq), node))
            if len(batch) == 1:
                medium.send(batch[0][0], batch[0][1])
            elif batch:
                medium.send_slot_batch(batch)
        if heap:
            self._arm(self._slot_after(heap[0][0]))


class _ReceiverState:
    """Per-source reception memory: de-duplication and ack bitmaps.

    An array-backed ring of the last ``_RECEIVE_MEMORY`` packet ids
    plus a membership set: recording is two O(1) set operations and a
    ring slot write, and the bitmap probes are set lookups — no
    ordered-dict reshuffling on the per-packet path.  Eviction is
    FIFO by first reception rather than LRU; with monotonically
    increasing packet ids and a 512-deep window the two policies only
    diverge after a duplicate arrives hundreds of fresh packets late,
    far outside the 8-slot bitmap and retransmission horizons.
    """

    __slots__ = ("_ring", "_seen", "_head")

    def __init__(self):
        self._ring = [None] * _RECEIVE_MEMORY
        self._seen = set()
        self._head = 0

    def record(self, pkt_id):
        """Record a reception; returns True when the id is new."""
        seen = self._seen
        if pkt_id in seen:
            return False
        seen.add(pkt_id)
        head = self._head
        ring = self._ring
        evicted = ring[head]
        if evicted is not None:
            seen.discard(evicted)
        ring[head] = pkt_id
        self._head = (head + 1) % _RECEIVE_MEMORY
        return True

    def missing_bitmap(self, pkt_id):
        """ViFi's 1-byte bitmap: which of the 8 prior ids are missing."""
        seen = self._seen
        bitmap = 0
        for k in range(8):
            candidate = pkt_id - 1 - k
            if candidate >= 0 and candidate not in seen:
                bitmap |= 1 << k
        return bitmap


@dataclass
class _Pending:
    """A packet owned by a :class:`LinkSender` awaiting acknowledgment."""

    packet: DataPacket
    enqueued_at: float
    arrival_at: float  # when it arrived at this sender (salvage age)
    tx_times: dict = field(default_factory=dict)
    tx_count: int = 0
    next_retx: float = 0.0
    acked: bool = False


class LinkSender:
    """Shared source-side engine (Section 4.7 and 4.8 behaviours).

    Maintains the FIFO of application packets, transmits "the earliest
    queued packet that is ready for transmission", retransmits
    unacknowledged packets when the adaptive timer expires (bounded by
    ``config.max_retx``), and processes bitmap acknowledgments.

    Args:
        node: owning node (provides ``node_id``, ``ctx``,
            ``can_send_data`` and ``current_aux_snapshot``).
        direction: direction of the packets this sender originates.
        dst_provider: callable returning the current destination node
            id (the vehicle's anchor changes over time) or ``None``.
    """

    def __init__(self, node, direction, dst_provider):
        self.node = node
        self.ctx = node.ctx
        self.direction = direction
        self.dst_provider = dst_provider
        self._pkt_ids = itertools.count()
        self.queue = deque()
        self.pending = {}
        # Unacked packets the link layer stopped retransmitting remain
        # eligible for salvaging (Section 4.5 transfers "any
        # unacknowledged packets ... received within a time threshold",
        # whether or not their retransmission budget is spent).
        self._retired = {}
        self._retx_event = None
        # Lazily validated min-heap of (next_retx, pkt_id): pushed on
        # every transmission, stale entries (completed packets, or
        # superseded retransmission times) skipped at the top.  The
        # timer re-arm — which runs on every pump, i.e. every frame
        # completion — is then O(1) amortized instead of a scan over
        # all pending packets.
        self._retx_heap = []
        self.enqueued = 0
        self.delivered_acks = 0
        self.given_up = 0

    # -- queueing ------------------------------------------------------

    def enqueue(self, payload, size_bytes, flow_id=0, seq=0, created_at=None,
                salvaged=False):
        """Accept one application packet; returns its pkt_id."""
        now = self.ctx.sim.now
        pkt_id = next(self._pkt_ids)
        packet = DataPacket(
            pkt_id=pkt_id,
            src=self.node.node_id,
            dst=-1,  # resolved at transmission time
            direction=self.direction,
            size_bytes=size_bytes,
            flow_id=flow_id,
            seq=seq,
            created_at=now if created_at is None else created_at,
            salvaged=salvaged,
            payload=payload,
        )
        self.pending[pkt_id] = _Pending(
            packet=packet, enqueued_at=now, arrival_at=now
        )
        self.queue.append(pkt_id)
        self.enqueued += 1
        self.pump()
        return pkt_id

    @property
    def queued_count(self):
        return len(self.pending)

    # -- transmission --------------------------------------------------

    def pump(self):
        """Transmit the earliest ready packet if the interface is free."""
        if not self.queue and not self._retx_heap:
            # Nothing queued and no retransmission armed (the heap
            # drains before the timer is ever cancelled): the pump
            # call that follows every frame completion — including
            # each beacon and ack — is a no-op.
            return
        if not self.node.can_send_data():
            return
        medium = self.ctx.medium
        if medium.queue_length(self.node.node_id) > 0:
            return
        now = self.ctx.sim.now
        config = self.ctx.config
        chosen = None
        for pkt_id in list(self.queue):
            pend = self.pending.get(pkt_id)
            if pend is None or pend.acked:
                self.queue.remove(pkt_id)
                continue
            if pend.tx_count == 0:
                chosen = pend
                break
            if pend.next_retx <= now:
                if pend.tx_count >= 1 + config.max_retx:
                    self._give_up(pkt_id)
                    continue
                chosen = pend
                break
        if chosen is not None:
            self._transmit(chosen)
        self._arm_retx_timer()

    def _transmit(self, pend):
        now = self.ctx.sim.now
        dst = self.dst_provider()
        if dst is None:
            return
        tx_id = self.ctx.next_tx_id()
        packet = pend.packet
        packet.dst = dst
        packet.tx_id = tx_id
        packet.is_retransmission = pend.tx_count > 0
        pend.tx_times[tx_id] = now
        pend.tx_count += 1
        pend.next_retx = now + self.node.retx_timer.timeout()
        heapq.heappush(self._retx_heap, (pend.next_retx, packet.pkt_id))
        aux = self.node.current_aux_snapshot()
        self.ctx.stats.on_source_tx(
            tx_id=tx_id,
            pkt_key=(self.node.node_id, packet.pkt_id),
            direction=self.direction,
            time=now,
            src=self.node.node_id,
            dst=dst,
            aux_designated=aux,
        )
        record = self.ctx.stats.packet_record(
            (self.node.node_id, packet.pkt_id), self.direction,
            packet.created_at, packet.size_bytes,
        )
        record.salvaged = record.salvaged or packet.salvaged
        unicast_to = dst if self.ctx.config.unicast_data else None
        self.ctx.medium.send(self.node.node_id, packet,
                             unicast_to=unicast_to)

    def _give_up(self, pkt_id):
        pend = self.pending.pop(pkt_id, None)
        if pkt_id in self.queue:
            self.queue.remove(pkt_id)
        if pend is not None:
            self.given_up += 1
            self._retired[pkt_id] = pend
            self.ctx.stats.on_give_up((self.node.node_id, pkt_id))

    def _arm_retx_timer(self):
        """Keep one timer armed at the earliest retransmission time.

        The earliest time comes from the lazy heap: entries whose
        packet completed, retired, or was retransmitted since (its
        ``next_retx`` moved) are discarded from the top, so the heap's
        first valid entry is exactly ``min(next_retx)`` over live
        pending packets — the same wake time the old full scan found.
        """
        heap = self._retx_heap
        pending = self.pending
        while heap:
            wake_at, pkt_id = heap[0]
            pend = pending.get(pkt_id)
            if pend is not None and not pend.acked and pend.tx_count > 0 \
                    and pend.next_retx == wake_at:
                break
            heapq.heappop(heap)
        event = self._retx_event
        if not heap:
            if event is not None and event.active:
                event.cancel()
            return
        wake = max(heap[0][0], self.ctx.sim.now)
        if event is not None and event.active:
            if event.time == wake:
                return  # already armed at the right instant
            event.cancel()
        self._retx_event = self.ctx.sim.schedule_at(wake, self.pump)

    # -- acknowledgment processing --------------------------------------

    def on_ack(self, ack):
        """Process an ack addressed to this sender."""
        now = self.ctx.sim.now
        pend = self.pending.get(ack.pkt_id)
        if pend is not None and not pend.acked:
            tx_time = pend.tx_times.get(ack.tx_id)
            if tx_time is not None:
                self.node.retx_timer.add_sample(now - tx_time)
            self._complete(ack.pkt_id)
        # Bitmap: ids in the 8-slot window NOT flagged missing were
        # received; retire them without a delay sample.
        missing = set(ack.missing_ids())
        for k in range(8):
            candidate = ack.pkt_id - 1 - k
            if candidate < 0 or candidate in missing:
                continue
            earlier = self.pending.get(candidate)
            if earlier is not None and not earlier.acked \
                    and earlier.tx_count > 0:
                self._complete(candidate)
        self.pump()

    def _complete(self, pkt_id):
        pend = self.pending.pop(pkt_id, None)
        self._retired.pop(pkt_id, None)
        if pkt_id in self.queue:
            self.queue.remove(pkt_id)
        if pend is not None:
            self.delivered_acks += 1
            self.ctx.stats.on_src_ack((self.node.node_id, pkt_id))

    # -- salvaging support ----------------------------------------------

    def unacked_within(self, age_s):
        """Unacked packets that arrived here within *age_s* seconds.

        Used by the previous anchor to answer a salvage request: "the
        old anchor transfers any unacknowledged packets that were
        received from the Internet within a certain time threshold"
        (Section 4.5).  Covers both packets still in the transmit queue
        and packets whose retransmission budget is spent.  The packets
        are removed from this sender.
        """
        now = self.ctx.sim.now
        harvest = []
        for pkt_id in list(self.queue):
            pend = self.pending.get(pkt_id)
            if pend is None or pend.acked:
                continue
            if now - pend.arrival_at <= age_s:
                harvest.append(pend.packet)
                self.pending.pop(pkt_id, None)
                self.queue.remove(pkt_id)
        for pkt_id, pend in list(self._retired.items()):
            if now - pend.arrival_at <= age_s:
                harvest.append(pend.packet)
            del self._retired[pkt_id]
        harvest.sort(key=lambda p: p.pkt_id)
        return harvest


@dataclass
class _SalvageRequest:
    requester: int
    vehicle: int


@dataclass
class _SalvagePayload:
    packets: list


class _NodeBase:
    """Shared node behaviour: beaconing and probability estimation."""

    def __init__(self, node_id, ctx):
        self.node_id = node_id
        self.ctx = ctx
        self._sim = ctx.sim  # hot-path alias: reception dispatch
        config = ctx.config
        self.estimator = ctx.make_estimator(node_id)
        self._note_beacon = self.estimator.on_beacon
        self.retx_timer = ctx.make_retx_timer()
        self._beacon_rng = ctx.rngs.stream("beacon-phase", node_id)
        self._phase = float(
            self._beacon_rng.uniform(0.0, config.beacon_interval)
        )
        # Jitter draws batched per node (vectorized uniform consumes
        # the generator exactly as repeated scalar draws, so the due
        # chain is bit-for-bit the scalar chain).
        self._jitter_buf = ()
        self._jitter_i = 0

    def start(self):
        """Arm the beacon and per-second estimator timers.

        Beacons register with the simulation's :class:`BeaconSlotter`
        when one is configured (one heap event per occupied slot
        instead of one per node per beacon); otherwise each node runs
        its own legacy timer.

        With an :class:`~repro.core.probabilities.EstimatorBank`
        configured (``estimator="array"``, the default) the node has no
        per-second timer at all: it registers with the bank, whose
        single period-aligned event folds every estimator and drives
        every ``on_second`` hook — one heap event per second instead of
        one per node, with the first fold window exactly one second
        long.  The legacy dict path below keeps its historical
        ``1.0 + phase`` first tick verbatim (digest-anchored), even
        though that first fold accumulates ``1 + phase`` seconds of
        beacons yet normalizes by one second's budget — the first-tick
        bias the bank fixes.
        """
        slotter = getattr(self.ctx, "beacon_slotter", None)
        if slotter is not None:
            slotter.add(self, self.ctx.sim.now + self._phase)
        else:
            self.ctx.sim.schedule_fire(self._phase, self._beacon_tick)
        bank = getattr(self.ctx, "estimator_bank", None)
        if bank is not None:
            bank.register(self)
        else:
            self.ctx.sim.schedule_fire(1.0 + self._phase,
                                       self._second_tick)

    # -- timers ----------------------------------------------------------

    def _next_beacon_due(self, due):
        """Advance the nominal due chain (same draws as the timers)."""
        interval = self.ctx.config.beacon_interval
        i = self._jitter_i
        buf = self._jitter_buf
        if i >= len(buf):
            buf = self._jitter_buf = self._beacon_rng.uniform(
                -0.05, 0.05, size=64
            ).tolist()
            i = 0
        self._jitter_i = i + 1
        jitter = buf[i] * interval
        return due + max(interval + jitter, 1e-4)

    def _emit_beacon(self, due):
        """Slotter callback: send one beacon; return the next due."""
        self._send_beacon()
        return self._next_beacon_due(due)

    def _beacon_tick(self):
        self._send_beacon()
        next_due = self._next_beacon_due(self.ctx.sim.now)
        self.ctx.sim.schedule_fire(next_due - self.ctx.sim.now,
                                   self._beacon_tick)

    def _second_tick(self):
        self.estimator.tick_second(self.ctx.sim.now)
        self.on_second()
        self.ctx.sim.schedule_fire(1.0, self._second_tick)

    def on_second(self):
        """Per-second hook for subclasses."""

    def _build_beacon(self):
        """Assemble one beacon frame from the node's current state."""
        incoming, learned = self.estimator.beacon_reports(self.ctx.sim.now)
        beacon = Beacon(
            sender=self.node_id,
            sent_at=self.ctx.sim.now,
            incoming=incoming,
            learned=learned,
        )
        self.decorate_beacon(beacon)
        return beacon

    def _send_beacon(self):
        self.ctx.medium.send(self.node_id, self._build_beacon())

    def decorate_beacon(self, beacon):
        """Subclass hook to add anchor/auxiliary designations."""

    # -- reception dispatch ----------------------------------------------

    def on_receive(self, frame, transmitter_id):
        kind = frame.kind
        if kind is _BEACON:
            self._note_beacon(frame, self._sim.now)
            self.on_beacon(frame)
        elif kind is _DATA:
            self.on_data(frame)
        elif kind is _ACK:
            self.on_ack_frame(frame)

    def on_beacon(self, beacon):
        """Subclass hook (estimator ingestion already done)."""

    def on_data(self, packet):
        raise NotImplementedError

    def on_ack_frame(self, ack):
        raise NotImplementedError

    def on_transmit_complete(self, frame):
        """Medium callback: our frame finished airing."""

    # -- common helpers ----------------------------------------------------

    def can_send_data(self):
        raise NotImplementedError

    def current_aux_snapshot(self):
        raise NotImplementedError

    def _send_ack(self, packet, receiver_state):
        ack = Ack(
            pkt_id=packet.pkt_id,
            acker=self.node_id,
            for_src=packet.src,
            missing_bitmap=receiver_state.missing_bitmap(packet.pkt_id),
            tx_id=packet.tx_id,
            in_response_to_relay=packet.relayed_by is not None,
        )
        self.ctx.medium.send(self.node_id, ack, priority=True)


class VehicleNode(_NodeBase):
    """The mobile client: anchor selection, upstream source, downstream sink.

    The vehicle selects its anchor with BRR over the exponentially
    averaged beacon reception ratios (Section 4.3), designates every
    recently heard BS as an auxiliary, and announces anchor, auxiliary
    set, and previous anchor in its beacons.
    """

    def __init__(self, node_id, ctx):
        super().__init__(node_id, ctx)
        self.anchor_id = None
        self.prev_anchor_id = None
        self.aux_ids = ()
        self.upstream = LinkSender(
            self, Direction.UPSTREAM, dst_provider=lambda: self.anchor_id
        )
        self._receiver_states = {}
        self.delivered_downstream = []
        self.downstream_sink = None

    # -- designations -----------------------------------------------------

    def on_second(self):
        self._update_designations()

    def _update_designations(self):
        config = self.ctx.config
        now = self.ctx.sim.now
        estimates = {
            bs: p for bs, p in self.estimator.incoming_estimates().items()
            if bs in self.ctx.bs_ids
        }
        recent = [
            bs for bs in self.estimator.peers_heard_within(
                now, config.aux_recent_s)
            if bs in self.ctx.bs_ids and bs != self.anchor_id
        ]
        self.aux_ids = tuple(sorted(recent))
        if not estimates:
            return
        best_bs, best_p = max(
            estimates.items(), key=lambda kv: (kv[1], -kv[0])
        )
        current_p = estimates.get(self.anchor_id, 0.0)
        should_switch = (
            self.anchor_id is None
            or current_p < config.min_anchor_quality
            or best_p > current_p * (1.0 + config.anchor_hysteresis)
        )
        if should_switch and best_bs != self.anchor_id \
                and best_p >= config.min_anchor_quality:
            if self.anchor_id is not None:
                self.prev_anchor_id = self.anchor_id
                self.ctx.stats.on_anchor_change()
            self.anchor_id = best_bs
            self.ctx.on_anchor_change(best_bs)
            self.upstream.pump()

    def decorate_beacon(self, beacon):
        beacon.anchor_id = self.anchor_id
        beacon.aux_ids = self.aux_ids
        beacon.prev_anchor_id = self.prev_anchor_id

    def can_send_data(self):
        return self.anchor_id is not None

    def current_aux_snapshot(self):
        return tuple(b for b in self.aux_ids if b != self.anchor_id)

    # -- app API ------------------------------------------------------------

    def send_upstream(self, payload, size_bytes, flow_id=0, seq=0):
        return self.upstream.enqueue(payload, size_bytes, flow_id=flow_id,
                                     seq=seq)

    # -- reception ------------------------------------------------------------

    def on_receive(self, frame, transmitter_id):
        # Specialized dispatch: the vehicle has no per-beacon protocol
        # hook (designation tracking is the BS side), so beacon
        # receptions — the bulk of all receptions — reduce to the
        # estimator note.
        kind = frame.kind
        if kind is _BEACON:
            self._note_beacon(frame, self._sim.now)
        elif kind is _DATA:
            self.on_data(frame)
        elif kind is _ACK:
            self.on_ack_frame(frame)

    def on_data(self, packet):
        if packet.dst != self.node_id:
            return  # the vehicle never relays
        state = self._receiver_states.setdefault(packet.src,
                                                 _ReceiverState())
        fresh = state.record(packet.pkt_id)
        self.ctx.stats.on_dst_receive(
            packet.tx_id, (packet.src, packet.pkt_id), self.ctx.sim.now,
            via_relay=packet.relayed_by is not None,
        )
        self._send_ack(packet, state)
        if fresh:
            self.delivered_downstream.append(
                (packet.seq, packet.created_at, self.ctx.sim.now)
            )
            if self.downstream_sink is not None:
                self.downstream_sink(packet, self.ctx.sim.now)

    def on_ack_frame(self, ack):
        if ack.for_src == self.node_id:
            self.upstream.on_ack(ack)

    def on_transmit_complete(self, frame):
        # Any of our frames leaving the interface (data, ack or beacon)
        # frees it for the next queued data packet.
        self.upstream.pump()


class BasestationNode(_NodeBase):
    """A basestation: anchor duties, auxiliary relaying, salvaging."""

    def __init__(self, node_id, ctx):
        super().__init__(node_id, ctx)
        self.is_anchor = False
        self.known_anchor = None
        self.known_aux = ()
        self.known_prev_anchor = None
        self.vehicle_id = None
        self.last_vehicle_beacon = None
        self.downstream = LinkSender(
            self, Direction.DOWNSTREAM, dst_provider=lambda: self.vehicle_id
        )
        self._receiver_states = {}
        self._relay_store = {}
        self._relay_considered = {}
        self._relay_suppressed = {}
        self._relay_rng = ctx.rngs.stream("relay-coin", node_id)
        # The "small window" of protocol step 3 is adaptive: the BS
        # tracks the gap between overhearing a data packet and
        # overhearing its ack, and waits out the bulk of that
        # distribution before deciding.  Under a saturated medium acks
        # air tens of milliseconds late; a fixed short window would
        # relay packets whose acks are merely queued (pure false
        # positives), while a fixed long window would delay relays that
        # interactive traffic needs.
        self._ack_gap = ctx.make_relay_window_timer()
        # First-overhear times for *all* recently overheard data keys,
        # kept independently of the relay store so ack-gap samples are
        # not survivorship-biased toward acks that beat the current
        # window.
        self._data_heard_at = {}
        self._prune_countdown = self._PRUNE_EVERY_S
        self.forwarded_upstream = []

    #: Seconds between relay-memory pruning scans.
    _PRUNE_EVERY_S = 4

    # -- designation tracking (from vehicle beacons) -------------------------

    def on_receive(self, frame, transmitter_id):
        # Specialized dispatch: BS beacons (the majority of beacon
        # receptions) carry no designations, so the protocol hook call
        # is skipped for them after the estimator note.
        kind = frame.kind
        if kind is _BEACON:
            self._note_beacon(frame, self._sim.now)
            if frame.anchor_id is not None or frame.aux_ids:
                self.on_beacon(frame)
        elif kind is _DATA:
            self.on_data(frame)
        elif kind is _ACK:
            self.on_ack_frame(frame)

    def on_beacon(self, beacon):
        if beacon.anchor_id is None and not beacon.aux_ids:
            return  # a BS beacon
        self.vehicle_id = beacon.sender
        self.known_anchor = beacon.anchor_id
        self.known_aux = tuple(beacon.aux_ids)
        self.known_prev_anchor = beacon.prev_anchor_id
        self.last_vehicle_beacon = self.ctx.sim.now
        if beacon.anchor_id == self.node_id and not self.is_anchor:
            self.is_anchor = True
            self.ctx.on_bs_became_anchor(self.node_id)
            if (self.ctx.config.salvage_enabled
                    and beacon.prev_anchor_id is not None
                    and beacon.prev_anchor_id != self.node_id):
                self._request_salvage(beacon.prev_anchor_id)
            self.downstream.pump()
        elif beacon.anchor_id != self.node_id and self.is_anchor:
            self.is_anchor = False

    def on_second(self):
        # Anchor belief decays if the vehicle has gone silent.
        config = self.ctx.config
        if self.is_anchor and self.last_vehicle_beacon is not None:
            silent = self.ctx.sim.now - self.last_vehicle_beacon
            if silent > config.anchor_belief_timeout:
                self.is_anchor = False
        # Pruning scans the full relay tables; against a 30 s horizon a
        # multi-second cadence reclaims the same memory at a quarter of
        # the scan cost.
        self._prune_countdown -= 1
        if self._prune_countdown <= 0:
            self._prune_countdown = self._PRUNE_EVERY_S
            self._prune_relay_memory()

    def can_send_data(self):
        return self.is_anchor and self.vehicle_id is not None

    def current_aux_snapshot(self):
        return tuple(b for b in self.known_aux if b != self.node_id)

    def is_designated_aux(self):
        return self.node_id in self.known_aux and not self.is_anchor

    # -- internet-facing API ---------------------------------------------------

    def on_internet_packet(self, payload, size_bytes, flow_id=0, seq=0,
                           created_at=None, salvaged=False):
        """Accept a downstream packet from the wired side."""
        return self.downstream.enqueue(
            payload, size_bytes, flow_id=flow_id, seq=seq,
            created_at=created_at, salvaged=salvaged,
        )

    # -- reception ---------------------------------------------------------------

    def on_data(self, packet):
        if packet.dst == self.node_id:
            self._receive_as_destination(packet)
        else:
            self._overhear_as_auxiliary(packet)

    def on_backplane_data(self, packet):
        """An upstream relay arriving over the wired backplane."""
        if packet.dst != self.node_id:
            return
        self._receive_as_destination(packet)

    def _receive_as_destination(self, packet):
        state = self._receiver_states.setdefault(packet.src,
                                                 _ReceiverState())
        fresh = state.record(packet.pkt_id)
        self.ctx.stats.on_dst_receive(
            packet.tx_id, (packet.src, packet.pkt_id), self.ctx.sim.now,
            via_relay=packet.relayed_by is not None,
        )
        self._send_ack(packet, state)
        if fresh:
            self.forwarded_upstream.append(
                (packet.seq, packet.created_at, self.ctx.sim.now)
            )
            self.ctx.gateway_deliver_upstream(packet)

    # -- auxiliary relaying (Section 4.3 step 3) ------------------------------

    def _overhear_as_auxiliary(self, packet):
        now = self.ctx.sim.now
        key = (packet.src, packet.pkt_id)
        # Ack-gap sampling measures from the *latest* overheard copy
        # (original, retransmission or relay): every copy triggers a
        # fresh ack at the destination, and the window must model
        # per-copy ack latency, not retransmission round trips.
        self._data_heard_at[key] = now
        if packet.relayed_by is not None:
            return  # never relay a relay
        if self.node_id in self.known_aux:
            self.ctx.stats.on_aux_overhear(packet.tx_id, self.node_id)
        if not self.is_designated_aux():
            return
        vehicle, anchor = self.vehicle_id, self.known_anchor
        if anchor is None or vehicle is None:
            return
        if {packet.src, packet.dst} != {vehicle, anchor}:
            return  # not part of the vehicle's current conversation
        # "A packet is considered for relaying only once" — per
        # overheard transmission copy: a source retransmission is a
        # fresh copy and earns a fresh decision, but the same copy
        # never re-enters the pipeline.  Packets whose acks were
        # overheard stay suppressed whatever copy arrives.
        if key in self._relay_suppressed:
            return
        copy_key = (packet.src, packet.pkt_id, packet.tx_id)
        if copy_key in self._relay_considered:
            return
        if key in self._relay_store:
            # A decision is already pending; refresh to the newest copy
            # so the relay (and its attribution) reflect the latest
            # transmission.
            _, heard_at = self._relay_store[key]
            self._relay_store[key] = (packet, heard_at)
            return
        config = self.ctx.config
        delay = self._ack_window() + float(
            self._relay_rng.uniform(0.0, config.relay_timer_interval)
        )
        self._relay_store[key] = (packet, now)
        # Relay decisions are never cancelled (suppression is checked
        # when the timer fires), so the handle-free event suffices.
        self.ctx.sim.schedule_fire(delay, self._relay_decision, key)

    def _ack_window(self):
        """Current ack-wait window: clamped multiple of the median gap."""
        config = self.ctx.config
        window = self._ack_gap.timeout() * config.relay_window_multiplier
        return min(max(window, config.relay_min_age),
                   config.relay_max_window)

    def on_ack_frame(self, ack):
        key = (ack.for_src, ack.pkt_id)
        if ack.for_src == self.node_id:
            self.downstream.on_ack(ack)
            return
        # Overheard ack: suppress relaying of this packet and of any
        # earlier packet the bitmap reports as received.
        now = self.ctx.sim.now
        heard_at = self._data_heard_at.pop(key, None)
        if heard_at is not None:
            self._ack_gap.add_sample(now - heard_at)
        if heard_at is not None or self.node_id in self.known_aux:
            self.ctx.stats.on_aux_heard_ack(key, self.node_id)
        self._suppress(key, now)
        bitmap = ack.missing_bitmap
        for_src = ack.for_src
        suppressed = self._relay_suppressed
        store = self._relay_store
        for k in range(8):
            candidate = ack.pkt_id - 1 - k
            if candidate >= 0 and not bitmap & (1 << k):
                earlier = (for_src, candidate)
                suppressed[earlier] = now
                store.pop(earlier, None)

    def _suppress(self, key, now):
        self._relay_suppressed[key] = now
        self._relay_store.pop(key, None)

    def _relay_decision(self, key):
        """Timer fired: decide once whether to relay the stored packet."""
        entry = self._relay_store.get(key)
        if entry is None:
            return  # suppressed by an overheard ack
        packet, heard_at = entry
        now = self.ctx.sim.now
        config = self.ctx.config
        # The adaptive window may have grown since this decision was
        # scheduled (the medium got busier); keep waiting until the
        # packet's age covers it, bounded by the staleness horizon.
        window = self._ack_window()
        age = now - heard_at
        if age < window and age < config.relay_max_age:
            self.ctx.sim.schedule_fire(
                min(window - age, config.relay_max_age - age) + 1e-4,
                self._relay_decision, key,
            )
            return
        del self._relay_store[key]
        self._relay_considered[
            (packet.src, packet.pkt_id, packet.tx_id)
        ] = now
        if not self.is_designated_aux():
            return
        ctx = self.ctx
        strategy = ctx.relay_strategy
        aux_ids = tuple(a for a in self.known_aux
                        if a not in (packet.src, packet.dst))
        # Strategies that read aggregate sums get the estimator's
        # cached array-indexed table; decisions between estimator
        # state changes then skip the 3K+1 probability lookups.
        table = self.estimator.relay_table(
            aux_ids, packet.src, packet.dst, now,
        ) if strategy.uses_table else None
        probability = strategy.relay_probability(RelayContext(
            self_id=self.node_id,
            aux_ids=aux_ids,
            src=packet.src,
            dst=packet.dst,
            p=self.estimator.probability_lookup(now),
            table=table,
        ))
        relayed = bool(self._relay_rng.random() < probability)
        ctx.stats.on_relay_decision(
            key, self.node_id, probability, relayed,
            trigger_tx_id=packet.tx_id,
        )
        if not relayed:
            return
        copy = packet.relay_copy(self.node_id)
        if packet.direction is Direction.UPSTREAM:
            dst_node = ctx.bs_node(packet.dst)
            if dst_node is not None:
                ctx.backplane.send(
                    self.node_id, packet.dst, copy, copy.size_bytes,
                    dst_node.on_backplane_data, category="relay",
                )
        else:
            ctx.medium.send(self.node_id, copy)

    def _prune_relay_memory(self, horizon_s=30.0):
        now = self.ctx.sim.now
        for table in (self._relay_considered, self._relay_suppressed):
            stale = [k for k, ts in table.items() if now - ts > horizon_s]
            for k in stale:
                del table[k]
        stale = [k for k, ts in self._data_heard_at.items()
                 if now - ts > 5.0]
        for k in stale:
            del self._data_heard_at[k]

    # -- salvaging (Section 4.5) ------------------------------------------------

    def _request_salvage(self, prev_anchor_id):
        prev_node = self.ctx.bs_node(prev_anchor_id)
        if prev_node is None:
            return
        request = _SalvageRequest(requester=self.node_id,
                                  vehicle=self.vehicle_id)
        self.ctx.backplane.send(
            self.node_id, prev_anchor_id, request, 64,
            prev_node.on_salvage_request, category="salvage-request",
        )

    def on_salvage_request(self, request):
        """Previous-anchor side: hand over recent unacked packets."""
        packets = self.downstream.unacked_within(
            self.ctx.config.salvage_age_s
        )
        self.ctx.stats.on_salvage(len(packets))
        if not packets:
            return
        requester_node = self.ctx.bs_node(request.requester)
        if requester_node is None:
            return
        total = sum(p.size_bytes for p in packets)
        self.ctx.backplane.send(
            self.node_id, request.requester, _SalvagePayload(packets),
            total, requester_node.on_salvage_payload, category="salvage",
        )

    def on_salvage_payload(self, payload):
        """New-anchor side: treat salvaged packets as fresh arrivals."""
        for packet in payload.packets:
            self.on_internet_packet(
                packet.payload, packet.size_bytes,
                flow_id=packet.flow_id, seq=packet.seq,
                created_at=packet.created_at, salvaged=True,
            )

    def on_transmit_complete(self, frame):
        # See VehicleNode.on_transmit_complete: the interface is free
        # again whatever kind of frame just finished airing.
        self.downstream.pump()
