"""The ViFi protocol engines: vehicle and basestation nodes.

This module implements the five-step protocol of Section 4.3 plus its
supporting machinery:

1. src transmits the packet P.
2. If dst receives P, it broadcasts an ACK.
3. If an auxiliary overhears P, but within a small window has not
   heard an ACK, it probabilistically relays P.
4. If dst receives relayed P and has not already sent an ACK, it
   broadcasts an ACK.
5. If src does not receive an ACK within a retransmission interval,
   it retransmits P.

Upstream relays ride the inter-BS backplane; downstream relays ride the
vehicle-BS wireless channel.  A packet is considered for relaying only
once, and relayed copies are never re-relayed.

The source logic (queueing, adaptive retransmission, bitmap-ack
processing, one-frame-at-the-interface pacing) is shared between the
vehicle (upstream) and the anchor BS (downstream) via
:class:`LinkSender`.
"""

import heapq
import itertools
import math
from collections import deque
from dataclasses import dataclass

from repro.core.relaying import RelayContext
from repro.net.packet import Ack, Beacon, DataPacket, Direction, FrameKind

__all__ = ["BasestationNode", "BeaconSlotter", "LinkSender", "VehicleNode"]

#: Number of recently received pkt_ids remembered per peer for
#: de-duplication and bitmap construction.
_RECEIVE_MEMORY = 512

# Frame-kind members bound at module level: reception dispatch runs for
# every delivered frame.
_BEACON = FrameKind.BEACON
_DATA = FrameKind.DATA
_ACK = FrameKind.ACK


class BeaconSlotter:
    """Slot-aligned batching of every node's beacon timer.

    With a dozen nodes beaconing ten times a second, per-node timers
    are the single largest source of heap events in a protocol run.
    The slotter keeps each node's *nominal* due time (phase, then
    ``due += interval + jitter``, drawn from the node's own stream
    exactly as the per-node timers drew it) in one priority queue and
    arms a single fire-and-forget event per occupied slot: when it
    fires, every beacon due up to that slot boundary is emitted in due
    order.

    Fidelity: due times are computed from the nominal chain, never from
    the aligned emission times, so beacon *rates* — the estimator's
    denominators — are exactly those of per-node timers; each emission
    is merely delayed to the next multiple of ``slot_s`` (at most one
    slot, default 20 ms against a 100 ms beacon interval).  Setting
    ``slot_s=0`` in the config restores per-node timers.

    With a *medium* attached, a slot's emissions are handed to
    :meth:`~repro.net.medium.WirelessMedium.send_slot_batch` as one
    batch: when the medium is idle and every emitter is free, the
    whole slot claims consecutive airtimes, costs a single heap event,
    and resolves through one stacked numpy pass (falling back to
    per-frame sends — bitwise-identical to the no-medium path —
    whenever those conditions fail).  Without a medium each node emits
    through its own :meth:`_emit_beacon`, the historical path kept
    verbatim.
    """

    def __init__(self, sim, slot_s, medium=None):
        self.sim = sim
        self.slot = float(slot_s)
        self.medium = medium
        self.faults = None  # set by an installed FaultPlane
        self._heap = []  # (nominal due, seq, node)
        self._seq = itertools.count()
        self._next_fire_at = None

    def add(self, node, first_due):
        """Register *node*; its first beacon is due at *first_due*."""
        heapq.heappush(self._heap, (float(first_due), next(self._seq),
                                    node))
        self._arm(self._slot_after(first_due))

    def _slot_after(self, due):
        """The emission slot for a nominal due time (never earlier)."""
        slot = self.slot
        aligned = math.ceil(due / slot) * slot
        return aligned if aligned >= due else aligned + slot

    def _arm(self, at):
        """Ensure a fire event exists at *at* or earlier.

        A node registered after the slotter armed may be due before
        the armed slot; an extra earlier event is scheduled and the
        superseded one becomes a no-op (see :meth:`_fire`).
        """
        nxt = self._next_fire_at
        if nxt is not None and nxt <= at:
            return
        self._next_fire_at = at
        self.sim.schedule_fire_at(at, self._fire)

    def _fire(self):
        now = self.sim.now
        nxt = self._next_fire_at
        if nxt is None or now < nxt:
            return  # superseded: an earlier fire already served us
        self._next_fire_at = None
        heap = self._heap
        push, pop = heapq.heappush, heapq.heappop
        medium = self.medium
        if medium is None:
            while heap and heap[0][0] <= now:
                due, _, node = pop(heap)
                next_due = node._emit_beacon(due)
                push(heap, (next_due, next(self._seq), node))
        else:
            # Build every due beacon first (builds draw no randomness
            # and read only the emitter's own state, so batch-building
            # is bit-identical to build-and-send interleaving), then
            # offer the slot to the medium as one batch.
            batch = []
            while heap and heap[0][0] <= now:
                due, _, node = pop(heap)
                # Fault-suppressed emitters skip the batch but keep
                # advancing (and drawing) their nominal due chain.
                if not node._beacon_blocked():
                    batch.append((node.node_id, node._build_beacon()))
                push(heap, (node._next_beacon_due(due),
                            next(self._seq), node))
            if len(batch) == 1:
                medium.send(batch[0][0], batch[0][1])
            elif batch:
                medium.send_slot_batch(batch)
        if heap:
            self._arm(self._slot_after(heap[0][0]))


class _ReceiverState:
    """Per-source reception memory: de-duplication and ack bitmaps.

    An array-backed ring of the last ``_RECEIVE_MEMORY`` packet ids
    plus a membership set: recording is two O(1) set operations and a
    ring slot write, and the bitmap probes are set lookups — no
    ordered-dict reshuffling on the per-packet path.  Eviction is
    FIFO by first reception rather than LRU; with monotonically
    increasing packet ids and a 512-deep window the two policies only
    diverge after a duplicate arrives hundreds of fresh packets late,
    far outside the 8-slot bitmap and retransmission horizons.
    """

    __slots__ = ("_ring", "_seen", "_head")

    def __init__(self):
        self._ring = [None] * _RECEIVE_MEMORY
        self._seen = set()
        self._head = 0

    def record(self, pkt_id):
        """Record a reception; returns True when the id is new."""
        seen = self._seen
        if pkt_id in seen:
            return False
        seen.add(pkt_id)
        head = self._head
        ring = self._ring
        evicted = ring[head]
        if evicted is not None:
            seen.discard(evicted)
        ring[head] = pkt_id
        self._head = (head + 1) % _RECEIVE_MEMORY
        return True

    def missing_bitmap(self, pkt_id):
        """ViFi's 1-byte bitmap: which of the 8 prior ids are missing."""
        seen = self._seen
        bitmap = 0
        for k in range(8):
            candidate = pkt_id - 1 - k
            if candidate >= 0 and candidate not in seen:
                bitmap |= 1 << k
        return bitmap


# Sender-side packet row states (see LinkSender).  A row is GONE once
# acknowledged, given up, or harvested by a salvage request; GONE rows
# are tombstones until the dead prefix is compacted away.
_GONE = 0
_PENDING = 1

#: Ring depth of a :class:`_PacketBank` source — power of two so the
#: slot map is a mask.  Twice the ``_RECEIVE_MEMORY`` window; the relay
#: horizons it must span (ack windows, retransmission lifetimes) are
#: fractions of a second against thousands of fresh ids.
_BANK_CAPACITY = 1024
_BANK_MASK = _BANK_CAPACITY - 1

# Per-row flag bits of a _PacketBank source ring.
_HEARD = 1       # an overheard data copy's time is in `heard`
_SUPPRESSED = 2  # an overheard ack retired this packet from relaying
_STORED = 4      # a relay decision is pending; candidate copy in `pkt`


class _SourceRing:
    """One source's packet rows inside a :class:`_PacketBank`."""

    __slots__ = ("ids", "flags", "heard", "stored_at", "pkt", "considered")

    def __init__(self):
        self.ids = [-1] * _BANK_CAPACITY
        self.flags = [0] * _BANK_CAPACITY
        self.heard = [0.0] * _BANK_CAPACITY
        self.stored_at = [0.0] * _BANK_CAPACITY
        self.pkt = [None] * _BANK_CAPACITY
        self.considered = [None] * _BANK_CAPACITY

    def claim(self, pkt_id):
        """Row index for *pkt_id*, recycling an older occupant.

        Returns -1 when the slot is owned by a *newer* id: the query is
        about a packet at least ``_BANK_CAPACITY`` ids stale, far
        outside every relay/ack horizon, and is dropped rather than
        allowed to clobber live state.
        """
        i = pkt_id & _BANK_MASK
        cur = self.ids[i]
        if cur != pkt_id:
            if cur > pkt_id:
                return -1
            self.ids[i] = pkt_id
            self.flags[i] = 0
            self.pkt[i] = None
            self.considered[i] = None
        return i

    def probe(self, pkt_id):
        """Row index for *pkt_id* if it currently owns its slot."""
        i = pkt_id & _BANK_MASK
        return i if self.ids[i] == pkt_id else -1


class _PacketBank:
    """Ring/bitmap bookkeeping for the auxiliary-relay pipeline.

    The :class:`_ReceiverState` scheme generalized to the overhear /
    ack-suppression / relay-decision state a basestation keeps per
    overheard packet.  Instead of four dicts keyed by ``(src, pkt_id)``
    tuples (plus a periodic pruning scan to bound them), each source
    gets a fixed ring of integer-indexed rows — slot = ``pkt_id &
    mask`` — carrying the overhear time, suppression and
    pending-decision flag bits, the stored relay candidate, and the
    tx_ids already considered.  Every query is a mask, a list index and
    an int compare; memory is bounded by construction, so the pruning
    scans disappear.

    Eviction is by slot reuse: a row lives for ``_BANK_CAPACITY``
    packet ids of its source.  As with ``_ReceiverState``, the relay
    horizons (``relay_max_age`` 0.25 s, retransmission lifetimes under
    a couple of seconds) are orders of magnitude shorter than a
    1024-id window, so recycling diverges from the dict path only for
    copies or acks arriving absurdly late — the slow oracle suite
    asserts query-for-query equality against a reference dict
    implementation under protocol-shaped schedules.
    """

    __slots__ = ("_rings", "_src", "_ring")

    def __init__(self):
        self._rings = {}
        self._src = None
        self._ring = None

    def ring(self, src):
        """The per-source ring, with a one-entry lookup cache (a BS
        overhears essentially one conversation at a time)."""
        if src == self._src:
            return self._ring
        ring = self._rings.get(src)
        if ring is None:
            ring = self._rings[src] = _SourceRing()
        self._src = src
        self._ring = ring
        return ring


class LinkSender:
    """Shared source-side engine (Section 4.7 and 4.8 behaviours).

    Maintains the FIFO of application packets, transmits "the earliest
    queued packet that is ready for transmission", retransmits
    unacknowledged packets when the adaptive timer expires (bounded by
    ``config.max_retx``), and processes bitmap acknowledgments.

    Packet state is columnar: pkt_ids are dense and monotone (one
    ``itertools.count`` per sender), so a packet's row is
    ``pkt_id - _base`` into parallel lists — state code, packet object,
    timestamps, transmission history, retransmission deadline.  An ack
    lookup is an index compare plus a state read instead of tuple
    hashing into a dict of per-packet objects, and the bitmap loop
    touches eight adjacent rows.  Completed rows become in-place
    tombstones (``_GONE``); the transmit FIFO drops them lazily instead
    of ``deque.remove``-ing per completion (O(queue) per delivered
    packet under backlog), and the dead column prefix is sliced off
    every few thousand completions so memory tracks the live window.

    Args:
        node: owning node (provides ``node_id``, ``ctx``,
            ``can_send_data`` and ``current_aux_snapshot``).
        direction: direction of the packets this sender originates.
        dst_provider: callable returning the current destination node
            id (the vehicle's anchor changes over time) or ``None``.
    """

    def __init__(self, node, direction, dst_provider):
        self.node = node
        self.ctx = node.ctx
        self.direction = direction
        self.dst_provider = dst_provider
        self._pkt_ids = itertools.count()
        self.queue = deque()
        # Columnar packet rows, indexed by pkt_id - _base: state code,
        # packet, enqueue/arrival times, per-copy tx ids and times
        # (parallel small lists, allocated on first transmission),
        # transmission count and next retransmission deadline.
        self._base = 0
        self._st = []
        self._pkt = []
        self._enq = []
        self._arr = []
        self._txi = []
        self._txt = []
        self._txc = []
        self._nxt = []
        self._live = 0
        self._done_since_compact = 0
        # Unacked packets the link layer stopped retransmitting remain
        # eligible for salvaging (Section 4.5 transfers "any
        # unacknowledged packets ... received within a time threshold",
        # whether or not their retransmission budget is spent); their
        # rows are tombstoned and the packet parked here until the next
        # salvage request drains it.
        self._retired = {}
        self._retx_event = None
        # Lazily validated min-heap of (next_retx, pkt_id): pushed on
        # every transmission, stale entries (completed packets, or
        # superseded retransmission times) skipped at the top.  The
        # timer re-arm — which runs on every pump, i.e. every frame
        # completion — is then O(1) amortized instead of a scan over
        # all pending packets.
        self._retx_heap = []
        self.enqueued = 0
        self.delivered_acks = 0
        self.given_up = 0

    # -- queueing ------------------------------------------------------

    def enqueue(self, payload, size_bytes, flow_id=0, seq=0, created_at=None,
                salvaged=False):
        """Accept one application packet; returns its pkt_id."""
        now = self.ctx.sim.now
        pkt_id = next(self._pkt_ids)
        packet = DataPacket(
            pkt_id=pkt_id,
            src=self.node.node_id,
            dst=-1,  # resolved at transmission time
            direction=self.direction,
            size_bytes=size_bytes,
            flow_id=flow_id,
            seq=seq,
            created_at=now if created_at is None else created_at,
            salvaged=salvaged,
            payload=payload,
        )
        self._st.append(_PENDING)
        self._pkt.append(packet)
        self._enq.append(now)
        self._arr.append(now)
        self._txi.append(None)
        self._txt.append(None)
        self._txc.append(0)
        self._nxt.append(0.0)
        self._live += 1
        self.queue.append(pkt_id)
        self.enqueued += 1
        self.pump()
        return pkt_id

    @property
    def queued_count(self):
        return self._live

    # -- transmission --------------------------------------------------

    def pump(self):
        """Transmit the earliest ready packet if the interface is free."""
        queue = self.queue
        if not queue and not self._retx_heap:
            # Nothing queued and no retransmission armed (the heap
            # drains before the timer is ever cancelled): the pump
            # call that follows every frame completion — including
            # each beacon and ack — is a no-op.
            return
        if not self.node.can_send_data():
            return
        medium = self.ctx.medium
        if medium.queue_length(self.node.node_id) > 0:
            return
        now = self.ctx.sim.now
        config = self.ctx.config
        if self._done_since_compact >= 4096:
            self._done_since_compact = 0
            self._compact()
        st = self._st
        txc = self._txc
        nxt = self._nxt
        base = self._base
        # Reclaim completed head entries; mid-queue tombstones are
        # merely skipped below (they drain once they reach the head).
        # A negative index means the row was already compacted away —
        # dead by definition.  The queue is in pkt_id order, so once
        # the head row is live every later index is in range.
        while queue:
            idx = queue[0] - base
            if idx >= 0 and st[idx] == _PENDING:
                break
            queue.popleft()
        chosen = -1
        max_tx = 1 + config.max_retx
        for pkt_id in queue:
            idx = pkt_id - base
            if st[idx] != _PENDING:
                continue
            count = txc[idx]
            if count == 0:
                chosen = idx
                break
            if nxt[idx] <= now:
                if count >= max_tx:
                    # Retiring only tombstones the row — no deque
                    # mutation, so iterating on is safe.
                    self._give_up(idx, pkt_id)
                    continue
                chosen = idx
                break
        if chosen >= 0:
            self._transmit(chosen)
        self._arm_retx_timer()

    def _transmit(self, idx):
        now = self.ctx.sim.now
        dst = self.dst_provider()
        if dst is None:
            return
        tx_id = self.ctx.next_tx_id()
        packet = self._pkt[idx]
        packet.dst = dst
        packet.tx_id = tx_id
        count = self._txc[idx]
        packet.is_retransmission = count > 0
        txi = self._txi[idx]
        if txi is None:
            txi = self._txi[idx] = []
            self._txt[idx] = []
        txi.append(tx_id)
        self._txt[idx].append(now)
        self._txc[idx] = count + 1
        wake = now + self.node.retx_timer.timeout()
        self._nxt[idx] = wake
        heapq.heappush(self._retx_heap, (wake, packet.pkt_id))
        aux = self.node.current_aux_snapshot()
        self.ctx.stats.on_source_tx(
            tx_id=tx_id,
            pkt_key=(self.node.node_id, packet.pkt_id),
            direction=self.direction,
            time=now,
            src=self.node.node_id,
            dst=dst,
            aux_designated=aux,
        )
        record = self.ctx.stats.packet_record(
            (self.node.node_id, packet.pkt_id), self.direction,
            packet.created_at, packet.size_bytes,
        )
        record.salvaged = record.salvaged or packet.salvaged
        unicast_to = dst if self.ctx.config.unicast_data else None
        self.ctx.medium.send(self.node.node_id, packet,
                             unicast_to=unicast_to)

    def _give_up(self, idx, pkt_id):
        self._retired[pkt_id] = (self._pkt[idx], self._arr[idx])
        self._tombstone(idx)
        self.given_up += 1
        self.ctx.stats.on_give_up((self.node.node_id, pkt_id))

    def _tombstone(self, idx):
        """Mark a row dead, dropping its object references."""
        self._st[idx] = _GONE
        self._pkt[idx] = None
        self._txi[idx] = None
        self._txt[idx] = None
        self._live -= 1
        # Compaction is deferred to the next pump(): callers cache the
        # column lists and base offset across a batch of completions.
        self._done_since_compact += 1

    def _compact(self):
        """Slice the dead row prefix off every column.

        Rows complete roughly in pkt_id order (FIFO service, bounded
        retransmission lifetimes), so the prefix covers almost all
        tombstones; running it every 4096 completions keeps the scan
        amortized O(1) per packet.
        """
        st = self._st
        n = len(st)
        k = 0
        while k < n and st[k] == _GONE:
            k += 1
        if k == 0:
            return
        del st[:k]
        del self._pkt[:k]
        del self._enq[:k]
        del self._arr[:k]
        del self._txi[:k]
        del self._txt[:k]
        del self._txc[:k]
        del self._nxt[:k]
        self._base += k

    def _arm_retx_timer(self):
        """Keep one timer armed at the earliest retransmission time.

        The earliest time comes from the lazy heap: entries whose
        packet completed, retired, or was retransmitted since (its
        ``next_retx`` moved) are discarded from the top, so the heap's
        first valid entry is exactly ``min(next_retx)`` over live
        pending packets — the same wake time the old full scan found.
        """
        heap = self._retx_heap
        st = self._st
        base = self._base
        while heap:
            wake_at, pkt_id = heap[0]
            idx = pkt_id - base
            if idx >= 0 and st[idx] == _PENDING \
                    and self._txc[idx] > 0 and self._nxt[idx] == wake_at:
                break
            heapq.heappop(heap)
        event = self._retx_event
        if not heap:
            if event is not None and event.active:
                event.cancel()
            return
        wake = max(heap[0][0], self.ctx.sim.now)
        if event is not None and event.active:
            if event.time == wake:
                return  # already armed at the right instant
            event.cancel()
        self._retx_event = self.ctx.sim.schedule_at(wake, self.pump)

    # -- acknowledgment processing --------------------------------------

    def on_ack(self, ack):
        """Process an ack addressed to this sender."""
        now = self.ctx.sim.now
        st = self._st
        base = self._base
        n = len(st)
        pkt_id = ack.pkt_id
        idx = pkt_id - base
        if 0 <= idx < n and st[idx] == _PENDING:
            txi = self._txi[idx]
            if txi is not None and ack.tx_id in txi:
                tx_time = self._txt[idx][txi.index(ack.tx_id)]
                self.node.retx_timer.add_sample(now - tx_time)
            self._complete(idx, pkt_id)
        # Bitmap: ids in the 8-slot window NOT flagged missing were
        # received; retire them without a delay sample.
        bitmap = ack.missing_bitmap
        for k in range(8):
            candidate = pkt_id - 1 - k
            if candidate < 0 or bitmap & (1 << k):
                continue
            cidx = candidate - base
            if 0 <= cidx < n and st[cidx] == _PENDING \
                    and self._txc[cidx] > 0:
                self._complete(cidx, candidate)
        self.pump()

    def _complete(self, idx, pkt_id):
        self._tombstone(idx)
        self.delivered_acks += 1
        self.ctx.stats.on_src_ack((self.node.node_id, pkt_id))

    # -- salvaging support ----------------------------------------------

    def unacked_within(self, age_s):
        """Unacked packets that arrived here within *age_s* seconds.

        Used by the previous anchor to answer a salvage request: "the
        old anchor transfers any unacknowledged packets that were
        received from the Internet within a certain time threshold"
        (Section 4.5).  Covers both packets still in the transmit queue
        and packets whose retransmission budget is spent.  The packets
        are removed from this sender.
        """
        now = self.ctx.sim.now
        harvest = []
        st = self._st
        base = self._base
        kept = deque()
        for pkt_id in self.queue:
            idx = pkt_id - base
            if idx < 0 or st[idx] != _PENDING:
                continue  # tombstone: dropped while rebuilding anyway
            if now - self._arr[idx] <= age_s:
                harvest.append(self._pkt[idx])
                self._tombstone(idx)
            else:
                kept.append(pkt_id)
        self.queue = kept
        for pkt_id, (packet, arrival_at) in list(self._retired.items()):
            if now - arrival_at <= age_s:
                harvest.append(packet)
            del self._retired[pkt_id]
        harvest.sort(key=lambda p: p.pkt_id)
        return harvest


@dataclass
class _SalvageRequest:
    requester: int
    vehicle: int


@dataclass
class _SalvagePayload:
    packets: list


class _NodeBase:
    """Shared node behaviour: beaconing and probability estimation."""

    def __init__(self, node_id, ctx):
        self.node_id = node_id
        self.ctx = ctx
        self._sim = ctx.sim  # hot-path alias: reception dispatch
        # Fault plane (repro.sim.faults): a dead radio neither sends
        # nor receives over the medium; the wired side stays alive.
        # Both stay at their defaults for the whole run unless a
        # FaultPlane is installed, so nominal runs are bitwise intact.
        self.radio_down = False
        self.faults = None
        config = ctx.config
        self.estimator = ctx.make_estimator(node_id)
        self._note_beacon = self.estimator.on_beacon
        self.retx_timer = ctx.make_retx_timer()
        self._beacon_rng = ctx.rngs.stream("beacon-phase", node_id)
        self._phase = float(
            self._beacon_rng.uniform(0.0, config.beacon_interval)
        )
        # Jitter draws batched per node (vectorized uniform consumes
        # the generator exactly as repeated scalar draws, so the due
        # chain is bit-for-bit the scalar chain).
        self._jitter_buf = ()
        self._jitter_i = 0

    def start(self):
        """Arm the beacon and per-second estimator timers.

        Beacons register with the simulation's :class:`BeaconSlotter`
        when one is configured (one heap event per occupied slot
        instead of one per node per beacon); otherwise each node runs
        its own legacy timer.

        With an :class:`~repro.core.probabilities.EstimatorBank`
        configured (``estimator="array"``, the default) the node has no
        per-second timer at all: it registers with the bank, whose
        single period-aligned event folds every estimator and drives
        every ``on_second`` hook — one heap event per second instead of
        one per node, with the first fold window exactly one second
        long.  The legacy dict path below keeps its historical
        ``1.0 + phase`` first tick verbatim (digest-anchored), even
        though that first fold accumulates ``1 + phase`` seconds of
        beacons yet normalizes by one second's budget — the first-tick
        bias the bank fixes.
        """
        slotter = getattr(self.ctx, "beacon_slotter", None)
        if slotter is not None:
            slotter.add(self, self.ctx.sim.now + self._phase)
        else:
            self.ctx.sim.schedule_fire(self._phase, self._beacon_tick)
        bank = getattr(self.ctx, "estimator_bank", None)
        if bank is not None:
            bank.register(self)
        else:
            self.ctx.sim.schedule_fire(1.0 + self._phase,
                                       self._second_tick)

    # -- timers ----------------------------------------------------------

    def _next_beacon_due(self, due):
        """Advance the nominal due chain (same draws as the timers)."""
        interval = self.ctx.config.beacon_interval
        i = self._jitter_i
        buf = self._jitter_buf
        if i >= len(buf):
            buf = self._jitter_buf = self._beacon_rng.uniform(
                -0.05, 0.05, size=64
            ).tolist()
            i = 0
        self._jitter_i = i + 1
        jitter = buf[i] * interval
        return due + max(interval + jitter, 1e-4)

    def _beacon_blocked(self):
        """Whether emission is fault-suppressed right now.

        The due chain advances (and draws its jitter) regardless, so a
        suppression window delays nothing in the nominal schedule.
        """
        faults = self.faults
        return self.radio_down or (
            faults is not None and faults.beacons_suppressed
        )

    def _emit_beacon(self, due):
        """Slotter callback: send one beacon; return the next due."""
        if not self._beacon_blocked():
            self._send_beacon()
        return self._next_beacon_due(due)

    def _beacon_tick(self):
        if not self._beacon_blocked():
            self._send_beacon()
        next_due = self._next_beacon_due(self.ctx.sim.now)
        self.ctx.sim.schedule_fire(next_due - self.ctx.sim.now,
                                   self._beacon_tick)

    def _second_tick(self):
        self.estimator.tick_second(self.ctx.sim.now)
        self.on_second()
        self.ctx.sim.schedule_fire(1.0, self._second_tick)

    def on_second(self):
        """Per-second hook for subclasses."""

    def _build_beacon(self):
        """Assemble one beacon frame from the node's current state."""
        incoming, learned = self.estimator.beacon_reports(self.ctx.sim.now)
        beacon = Beacon(
            sender=self.node_id,
            sent_at=self.ctx.sim.now,
            incoming=incoming,
            learned=learned,
        )
        self.decorate_beacon(beacon)
        return beacon

    def _send_beacon(self):
        self.ctx.medium.send(self.node_id, self._build_beacon())

    def decorate_beacon(self, beacon):
        """Subclass hook to add anchor/auxiliary designations."""

    # -- reception dispatch ----------------------------------------------

    def on_receive(self, frame, transmitter_id):
        if self.radio_down:
            return
        kind = frame.kind
        if kind is _BEACON:
            self._note_beacon(frame, self._sim.now)
            self.on_beacon(frame)
        elif kind is _DATA:
            self.on_data(frame)
        elif kind is _ACK:
            self.on_ack_frame(frame)

    def on_beacon(self, beacon):
        """Subclass hook (estimator ingestion already done)."""

    def on_data(self, packet):
        raise NotImplementedError

    def on_ack_frame(self, ack):
        raise NotImplementedError

    def on_transmit_complete(self, frame):
        """Medium callback: our frame finished airing."""

    # -- common helpers ----------------------------------------------------

    def can_send_data(self):
        raise NotImplementedError

    def current_aux_snapshot(self):
        raise NotImplementedError

    def _send_ack(self, packet, receiver_state):
        if self.radio_down:
            # A wired delivery can still reach a radio-dead destination
            # (backplane relay); the ack is what the fault costs, so
            # the source falls back to retransmitting.
            return
        ack = Ack(
            pkt_id=packet.pkt_id,
            acker=self.node_id,
            for_src=packet.src,
            missing_bitmap=receiver_state.missing_bitmap(packet.pkt_id),
            tx_id=packet.tx_id,
            in_response_to_relay=packet.relayed_by is not None,
        )
        self.ctx.medium.send(self.node_id, ack, priority=True)


class VehicleNode(_NodeBase):
    """The mobile client: anchor selection, upstream source, downstream sink.

    The vehicle selects its anchor with BRR over the exponentially
    averaged beacon reception ratios (Section 4.3), designates every
    recently heard BS as an auxiliary, and announces anchor, auxiliary
    set, and previous anchor in its beacons.
    """

    def __init__(self, node_id, ctx):
        super().__init__(node_id, ctx)
        self.anchor_id = None
        self.prev_anchor_id = None
        self.aux_ids = ()
        self.upstream = LinkSender(
            self, Direction.UPSTREAM, dst_provider=lambda: self.anchor_id
        )
        self._receiver_states = {}
        self.delivered_downstream = []
        self.downstream_sink = None

    # -- designations -----------------------------------------------------

    def on_second(self):
        self._update_designations()

    def _update_designations(self):
        config = self.ctx.config
        now = self.ctx.sim.now
        estimates = {
            bs: p for bs, p in self.estimator.incoming_estimates().items()
            if bs in self.ctx.bs_ids
        }
        recent = [
            bs for bs in self.estimator.peers_heard_within(
                now, config.aux_recent_s)
            if bs in self.ctx.bs_ids and bs != self.anchor_id
        ]
        self.aux_ids = tuple(sorted(recent))
        if not estimates:
            return
        best_bs, best_p = max(
            estimates.items(), key=lambda kv: (kv[1], -kv[0])
        )
        current_p = estimates.get(self.anchor_id, 0.0)
        should_switch = (
            self.anchor_id is None
            or current_p < config.min_anchor_quality
            or best_p > current_p * (1.0 + config.anchor_hysteresis)
        )
        if should_switch and best_bs != self.anchor_id \
                and best_p >= config.min_anchor_quality:
            if self.anchor_id is not None:
                self.prev_anchor_id = self.anchor_id
                self.ctx.stats.on_anchor_change()
            self.anchor_id = best_bs
            self.ctx.on_anchor_change(best_bs)
            self.upstream.pump()

    def decorate_beacon(self, beacon):
        beacon.anchor_id = self.anchor_id
        beacon.aux_ids = self.aux_ids
        beacon.prev_anchor_id = self.prev_anchor_id

    def can_send_data(self):
        return self.anchor_id is not None and not self.radio_down

    def current_aux_snapshot(self):
        return tuple(b for b in self.aux_ids if b != self.anchor_id)

    # -- app API ------------------------------------------------------------

    def send_upstream(self, payload, size_bytes, flow_id=0, seq=0):
        return self.upstream.enqueue(payload, size_bytes, flow_id=flow_id,
                                     seq=seq)

    # -- reception ------------------------------------------------------------

    def on_receive(self, frame, transmitter_id):
        # Specialized dispatch: the vehicle has no per-beacon protocol
        # hook (designation tracking is the BS side), so beacon
        # receptions — the bulk of all receptions — reduce to the
        # estimator note.
        if self.radio_down:
            return
        kind = frame.kind
        if kind is _BEACON:
            self._note_beacon(frame, self._sim.now)
        elif kind is _DATA:
            self.on_data(frame)
        elif kind is _ACK:
            self.on_ack_frame(frame)

    def on_data(self, packet):
        if packet.dst != self.node_id:
            return  # the vehicle never relays
        state = self._receiver_states.setdefault(packet.src,
                                                 _ReceiverState())
        fresh = state.record(packet.pkt_id)
        self.ctx.stats.on_dst_receive(
            packet.tx_id, (packet.src, packet.pkt_id), self.ctx.sim.now,
            via_relay=packet.relayed_by is not None,
        )
        self._send_ack(packet, state)
        if fresh:
            self.delivered_downstream.append(
                (packet.seq, packet.created_at, self.ctx.sim.now)
            )
            if self.downstream_sink is not None:
                self.downstream_sink(packet, self.ctx.sim.now)

    def on_ack_frame(self, ack):
        if ack.for_src == self.node_id:
            self.upstream.on_ack(ack)

    def on_transmit_complete(self, frame):
        # Any of our frames leaving the interface (data, ack or beacon)
        # frees it for the next queued data packet.
        self.upstream.pump()


class BasestationNode(_NodeBase):
    """A basestation: anchor duties, auxiliary relaying, salvaging."""

    def __init__(self, node_id, ctx):
        super().__init__(node_id, ctx)
        self.is_anchor = False
        self.known_anchor = None
        self.known_aux = ()
        self.known_prev_anchor = None
        self.vehicle_id = None
        self.last_vehicle_beacon = None
        self.downstream = LinkSender(
            self, Direction.DOWNSTREAM, dst_provider=lambda: self.vehicle_id
        )
        self._receiver_states = {}
        # All overhear / suppression / pending-relay-decision state
        # lives in one ring-structured bank (see _PacketBank); bounded
        # by construction, so no pruning timer is needed.
        self._packets = _PacketBank()
        self._relay_rng = ctx.rngs.stream("relay-coin", node_id)
        # The "small window" of protocol step 3 is adaptive: the BS
        # tracks the gap between overhearing a data packet and
        # overhearing its ack, and waits out the bulk of that
        # distribution before deciding.  Under a saturated medium acks
        # air tens of milliseconds late; a fixed short window would
        # relay packets whose acks are merely queued (pure false
        # positives), while a fixed long window would delay relays that
        # interactive traffic needs.
        self._ack_gap = ctx.make_relay_window_timer()
        self.forwarded_upstream = []

    # -- designation tracking (from vehicle beacons) -------------------------

    def on_receive(self, frame, transmitter_id):
        # Specialized dispatch: BS beacons (the majority of beacon
        # receptions) carry no designations, so the protocol hook call
        # is skipped for them after the estimator note.
        if self.radio_down:
            return
        kind = frame.kind
        if kind is _BEACON:
            self._note_beacon(frame, self._sim.now)
            if frame.anchor_id is not None or frame.aux_ids:
                self.on_beacon(frame)
        elif kind is _DATA:
            self.on_data(frame)
        elif kind is _ACK:
            self.on_ack_frame(frame)

    def on_beacon(self, beacon):
        if beacon.anchor_id is None and not beacon.aux_ids:
            return  # a BS beacon
        self.vehicle_id = beacon.sender
        self.known_anchor = beacon.anchor_id
        self.known_aux = tuple(beacon.aux_ids)
        self.known_prev_anchor = beacon.prev_anchor_id
        self.last_vehicle_beacon = self.ctx.sim.now
        if beacon.anchor_id == self.node_id and not self.is_anchor:
            self.is_anchor = True
            self.ctx.on_bs_became_anchor(self.node_id)
            if (self.ctx.config.salvage_enabled
                    and beacon.prev_anchor_id is not None
                    and beacon.prev_anchor_id != self.node_id):
                self._request_salvage(beacon.prev_anchor_id)
            self.downstream.pump()
        elif beacon.anchor_id != self.node_id and self.is_anchor:
            self.is_anchor = False

    def on_second(self):
        # Anchor belief decays if the vehicle has gone silent.
        config = self.ctx.config
        if self.is_anchor and self.last_vehicle_beacon is not None:
            silent = self.ctx.sim.now - self.last_vehicle_beacon
            if silent > config.anchor_belief_timeout:
                self.is_anchor = False

    def can_send_data(self):
        return self.is_anchor and self.vehicle_id is not None \
            and not self.radio_down

    def current_aux_snapshot(self):
        return tuple(b for b in self.known_aux if b != self.node_id)

    def is_designated_aux(self):
        return self.node_id in self.known_aux and not self.is_anchor

    # -- internet-facing API ---------------------------------------------------

    def on_internet_packet(self, payload, size_bytes, flow_id=0, seq=0,
                           created_at=None, salvaged=False):
        """Accept a downstream packet from the wired side."""
        return self.downstream.enqueue(
            payload, size_bytes, flow_id=flow_id, seq=seq,
            created_at=created_at, salvaged=salvaged,
        )

    # -- reception ---------------------------------------------------------------

    def on_data(self, packet):
        if packet.dst == self.node_id:
            self._receive_as_destination(packet)
        else:
            self._overhear_as_auxiliary(packet)

    def on_backplane_data(self, packet):
        """An upstream relay arriving over the wired backplane."""
        if packet.dst != self.node_id:
            return
        self._receive_as_destination(packet)

    def _receive_as_destination(self, packet):
        state = self._receiver_states.setdefault(packet.src,
                                                 _ReceiverState())
        fresh = state.record(packet.pkt_id)
        self.ctx.stats.on_dst_receive(
            packet.tx_id, (packet.src, packet.pkt_id), self.ctx.sim.now,
            via_relay=packet.relayed_by is not None,
        )
        self._send_ack(packet, state)
        if fresh:
            self.forwarded_upstream.append(
                (packet.seq, packet.created_at, self.ctx.sim.now)
            )
            self.ctx.gateway_deliver_upstream(packet)

    # -- auxiliary relaying (Section 4.3 step 3) ------------------------------

    def _overhear_as_auxiliary(self, packet):
        now = self.ctx.sim.now
        ring = self._packets.ring(packet.src)
        row = ring.claim(packet.pkt_id)
        flags = 0
        if row >= 0:
            # Ack-gap sampling measures from the *latest* overheard
            # copy (original, retransmission or relay): every copy
            # triggers a fresh ack at the destination, and the window
            # must model per-copy ack latency, not retransmission
            # round trips.
            flags = ring.flags[row] | _HEARD
            ring.flags[row] = flags
            ring.heard[row] = now
        if packet.relayed_by is not None:
            return  # never relay a relay
        if self.node_id in self.known_aux:
            self.ctx.stats.on_aux_overhear(packet.tx_id, self.node_id)
        if not self.is_designated_aux():
            return
        vehicle, anchor = self.vehicle_id, self.known_anchor
        if anchor is None or vehicle is None:
            return
        if {packet.src, packet.dst} != {vehicle, anchor}:
            return  # not part of the vehicle's current conversation
        if row < 0:
            return  # ancient duplicate, far outside every relay horizon
        # "A packet is considered for relaying only once" — per
        # overheard transmission copy: a source retransmission is a
        # fresh copy and earns a fresh decision, but the same copy
        # never re-enters the pipeline.  Packets whose acks were
        # overheard stay suppressed whatever copy arrives.
        if flags & _SUPPRESSED:
            return
        considered = ring.considered[row]
        if considered is not None and packet.tx_id in considered:
            return
        if flags & _STORED:
            # A decision is already pending; refresh to the newest copy
            # so the relay (and its attribution) reflect the latest
            # transmission.  The decision clock (stored_at) keeps
            # running from the first stored copy.
            ring.pkt[row] = packet
            return
        config = self.ctx.config
        delay = self._ack_window() + float(
            self._relay_rng.uniform(0.0, config.relay_timer_interval)
        )
        ring.flags[row] = flags | _STORED
        ring.pkt[row] = packet
        ring.stored_at[row] = now
        # Relay decisions are never cancelled (suppression is checked
        # when the timer fires), so the handle-free event suffices.
        self.ctx.sim.schedule_fire(delay, self._relay_decision,
                                   (packet.src, packet.pkt_id))

    def _ack_window(self):
        """Current ack-wait window: clamped multiple of the median gap."""
        config = self.ctx.config
        window = self._ack_gap.timeout() * config.relay_window_multiplier
        return min(max(window, config.relay_min_age),
                   config.relay_max_window)

    def on_ack_frame(self, ack):
        if ack.for_src == self.node_id:
            self.downstream.on_ack(ack)
            return
        # Overheard ack: suppress relaying of this packet and of any
        # earlier packet the bitmap reports as received.
        now = self.ctx.sim.now
        pkt_id = ack.pkt_id
        ring = self._packets.ring(ack.for_src)
        row = ring.claim(pkt_id)
        heard = False
        if row >= 0:
            flags = ring.flags[row]
            if flags & _HEARD:
                heard = True
                self._ack_gap.add_sample(now - ring.heard[row])
            ring.flags[row] = (flags | _SUPPRESSED) & ~(_HEARD | _STORED)
            ring.pkt[row] = None
        if heard or self.node_id in self.known_aux:
            self.ctx.stats.on_aux_heard_ack((ack.for_src, pkt_id),
                                            self.node_id)
        bitmap = ack.missing_bitmap
        flags_col = ring.flags
        pkt_col = ring.pkt
        for k in range(8):
            candidate = pkt_id - 1 - k
            if candidate >= 0 and not bitmap & (1 << k):
                crow = ring.claim(candidate)
                if crow >= 0:
                    # Bitmap suppression retires the relay candidate
                    # but keeps the overhear time: a direct ack for
                    # the older packet may still want a gap sample.
                    flags_col[crow] = (flags_col[crow] | _SUPPRESSED) \
                        & ~_STORED
                    pkt_col[crow] = None

    def _relay_decision(self, key):
        """Timer fired: decide once whether to relay the stored packet."""
        src, pkt_id = key
        ring = self._packets.ring(src)
        row = ring.probe(pkt_id)
        if row < 0 or not ring.flags[row] & _STORED:
            return  # suppressed by an overheard ack
        packet = ring.pkt[row]
        heard_at = ring.stored_at[row]
        now = self.ctx.sim.now
        config = self.ctx.config
        # The adaptive window may have grown since this decision was
        # scheduled (the medium got busier); keep waiting until the
        # packet's age covers it, bounded by the staleness horizon.
        window = self._ack_window()
        age = now - heard_at
        if age < window and age < config.relay_max_age:
            self.ctx.sim.schedule_fire(
                min(window - age, config.relay_max_age - age) + 1e-4,
                self._relay_decision, key,
            )
            return
        ring.flags[row] &= ~_STORED
        ring.pkt[row] = None
        considered = ring.considered[row]
        if considered is None:
            considered = ring.considered[row] = []
        considered.append(packet.tx_id)
        if not self.is_designated_aux():
            return
        ctx = self.ctx
        strategy = ctx.relay_strategy
        aux_ids = tuple(a for a in self.known_aux
                        if a not in (packet.src, packet.dst))
        # Strategies that read aggregate sums get the estimator's
        # cached array-indexed table; decisions between estimator
        # state changes then skip the 3K+1 probability lookups.
        table = self.estimator.relay_table(
            aux_ids, packet.src, packet.dst, now,
        ) if strategy.uses_table else None
        probability = strategy.relay_probability(RelayContext(
            self_id=self.node_id,
            aux_ids=aux_ids,
            src=packet.src,
            dst=packet.dst,
            p=self.estimator.probability_lookup(now),
            table=table,
        ))
        relayed = bool(self._relay_rng.random() < probability)
        ctx.stats.on_relay_decision(
            key, self.node_id, probability, relayed,
            trigger_tx_id=packet.tx_id,
        )
        if not relayed:
            return
        copy = packet.relay_copy(self.node_id)
        if packet.direction is Direction.UPSTREAM:
            dst_node = ctx.bs_node(packet.dst)
            if dst_node is not None:
                ctx.backplane.send(
                    self.node_id, packet.dst, copy, copy.size_bytes,
                    dst_node.on_backplane_data, category="relay",
                )
        elif not self.radio_down:
            # Downstream relays air over the radio; a dead radio drops
            # the relay (upstream relays above ride the wired plane,
            # which an outage leaves up).
            ctx.medium.send(self.node_id, copy)

    # -- salvaging (Section 4.5) ------------------------------------------------

    def _request_salvage(self, prev_anchor_id):
        prev_node = self.ctx.bs_node(prev_anchor_id)
        if prev_node is None:
            return
        request = _SalvageRequest(requester=self.node_id,
                                  vehicle=self.vehicle_id)
        self.ctx.backplane.send(
            self.node_id, prev_anchor_id, request, 64,
            prev_node.on_salvage_request, category="salvage-request",
        )

    def on_salvage_request(self, request):
        """Previous-anchor side: hand over recent unacked packets."""
        packets = self.downstream.unacked_within(
            self.ctx.config.salvage_age_s
        )
        self.ctx.stats.on_salvage(len(packets))
        if not packets:
            return
        requester_node = self.ctx.bs_node(request.requester)
        if requester_node is None:
            return
        total = sum(p.size_bytes for p in packets)
        self.ctx.backplane.send(
            self.node_id, request.requester, _SalvagePayload(packets),
            total, requester_node.on_salvage_payload, category="salvage",
        )

    def on_salvage_payload(self, payload):
        """New-anchor side: treat salvaged packets as fresh arrivals."""
        for packet in payload.packets:
            self.on_internet_packet(
                packet.payload, packet.size_bytes,
                flow_id=packet.flow_id, seq=packet.seq,
                created_at=packet.created_at, salvaged=True,
            )

    def on_transmit_complete(self, frame):
        # See VehicleNode.on_transmit_complete: the interface is free
        # again whatever kind of frame just finished airing.
        self.downstream.pump()
