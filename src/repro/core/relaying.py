"""Relay-probability computation (Section 4.4 and Section 5.5.1).

When an auxiliary BS hears a data packet but not its acknowledgment, it
must decide *locally* whether to relay.  ViFi's guidelines:

* **G1** — account for the relaying decisions other auxiliaries are
  making;
* **G2** — prefer auxiliaries with better connectivity to the
  destination;
* **G3** — limit the *expected number of relayed transmissions* (to 1).

With auxiliaries ``B_1..B_K``, source ``s`` and destination ``d``, and
``p_ab`` the probability that ``b`` receives a transmission from ``a``:

* the probability that ``B_i`` is *contending* (heard the packet, did
  not hear the ack) is ``c_i = p(s,Bi) * (1 - p(s,d) * p(d,Bi))``
  (Eq. 3);
* relay probabilities satisfy ``sum_i c_i * r_i = 1`` (Eq. 1) with
  ``r_i / r_j = p(Bi,d) / p(Bj,d)`` (Eq. 2), i.e. ``r_i = r * p(Bi,d)``;
* each contender solves for ``r`` and relays with probability
  ``min(r * p(Bx,d), 1)``.

The three ablations of Section 5.5.1 each violate one guideline and are
compared in Table 2:

* ``NotG1`` (:class:`IgnoreOthersStrategy`) — ignore other
  auxiliaries; relay with probability ``p(Bx,d)``.
* ``NotG2`` (:class:`IgnoreDestConnectivityStrategy`) — ignore
  connectivity to the destination; relay with probability
  ``1 / sum_i c_i``.
* ``NotG3`` (:class:`ExpectedDeliveryStrategy`) — make the expected
  number of packets *received by the destination* equal 1 (instead of
  the expected number *relayed*), via the greedy water-filling solution
  the paper derives.
"""

from dataclasses import dataclass

import numpy as np

__all__ = [
    "ExpectedDeliveryStrategy",
    "IgnoreDestConnectivityStrategy",
    "IgnoreOthersStrategy",
    "RelayContext",
    "RelayStrategy",
    "RelayTable",
    "ViFiRelayStrategy",
    "contention_probability",
    "make_strategy",
]


def contention_probability(p, src, dst, aux):
    """Eq. 3: probability that *aux* is contending on a packet.

    ``c_i = p(s -> Bi) * (1 - p(s -> d) * p(d -> Bi))``: the auxiliary
    received the original transmission and did not hear the (possibly
    never sent) acknowledgment; the two events are treated as
    independent.
    """
    return p(src, aux) * (1.0 - p(src, dst) * p(dst, aux))


class RelayTable:
    """Array-indexed relay rows for one ``(src, dst, aux set)``.

    One row per auxiliary, in ``aux_ids`` order: the Eq. 3 contention
    probability ``c_i`` and the delivery probability ``p(Bi -> d)``
    live in numpy columns, and the two aggregate sums the strategies
    need — the Eq. 1 denominator ``sum_i c_i * p(Bi, d)`` and the
    total contention ``sum_i c_i`` — are accumulated at build time
    with exactly the arithmetic (same expressions, same order) the
    scalar strategy loops use, so a decision served from a cached
    table is bit-for-bit identical to an uncached one.  Tables are
    built and memoized by
    :meth:`~repro.core.probabilities.ReceptionEstimator.relay_table`;
    one table serves every relay decision between estimator state
    changes instead of 3K+1 probability lookups per decision.
    """

    __slots__ = ("aux_ids", "index", "contention", "p_to_dst",
                 "denominator", "total_contention")

    def __init__(self, aux_ids, src, dst, p):
        n = len(aux_ids)
        contention = np.empty(n, dtype=np.float64)
        p_to_dst = np.empty(n, dtype=np.float64)
        p_src_dst = p(src, dst)  # loop-invariant factor of Eq. 3
        denominator = 0.0
        total_contention = 0.0
        for i, aux in enumerate(aux_ids):
            c_i = p(src, aux) * (1.0 - p_src_dst * p(dst, aux))
            p_i = p(aux, dst)
            contention[i] = c_i
            p_to_dst[i] = p_i
            denominator += c_i * p_i
            total_contention += c_i
        self.aux_ids = tuple(aux_ids)
        self.index = {aux: i for i, aux in enumerate(self.aux_ids)}
        self.contention = contention
        self.p_to_dst = p_to_dst
        self.denominator = denominator
        self.total_contention = total_contention

    @classmethod
    def from_columns(cls, aux_ids, contention, p_to_dst, denominator,
                     total_contention):
        """Adopt prebuilt columns and sums without re-running lookups.

        Used by the array-backed estimator, whose relay-table build
        prefetches each participant's report once and accumulates the
        two sums with exactly the arithmetic, in exactly the order, of
        :meth:`__init__` — callers are responsible for that contract,
        which keeps adopted tables bit-for-bit interchangeable with
        constructor-built ones.
        """
        table = cls.__new__(cls)
        table.aux_ids = tuple(aux_ids)
        table.index = {aux: i for i, aux in enumerate(table.aux_ids)}
        table.contention = contention
        table.p_to_dst = p_to_dst
        table.denominator = denominator
        table.total_contention = total_contention
        return table

    def own_delivery(self, self_id):
        """``p(self -> dst)`` as a python float, or ``None`` if absent."""
        i = self.index.get(self_id)
        if i is None:
            return None
        return float(self.p_to_dst[i])


@dataclass
class RelayContext:
    """Inputs to a relay decision.

    Attributes:
        self_id: the deciding auxiliary.
        aux_ids: the *current* set of auxiliary BSes (including
            ``self_id``), as designated by the vehicle's beacons.
        src: packet source (vehicle upstream, anchor downstream).
        dst: packet destination.
        p: callable ``(a, b) -> float`` returning the estimated
            reception probability from *a* to *b* (0 when unknown).
        table: optional :class:`RelayTable` built for the same
            ``(aux_ids, src, dst)``; strategies that declare
            ``uses_table`` read their sums from it instead of calling
            *p* per auxiliary.
    """

    self_id: int
    aux_ids: tuple
    src: int
    dst: int
    p: object
    table: object = None


class RelayStrategy:
    """Interface: map a :class:`RelayContext` to a relay probability."""

    name = "base"
    #: Strategies that read :class:`RelayTable` aggregates set this, so
    #: callers only pay the table build when it will be used.
    uses_table = False

    def relay_probability(self, ctx):
        raise NotImplementedError


class ViFiRelayStrategy(RelayStrategy):
    """The ViFi formulation: Eqs. 1-3, honoring G1, G2 and G3."""

    name = "vifi"
    uses_table = True

    def relay_probability(self, ctx):
        """Solve ``sum_i c_i * (r * p_i_d) = 1`` and return own r_x.

        When no auxiliary has usable connectivity information the
        denominator degenerates to zero; the deciding BS then falls
        back to relaying outright (probability 1), which errs toward a
        false positive instead of certainly losing the packet — the
        sensible default when a lone BS has no peer information.
        """
        table = ctx.table
        if table is not None and table.aux_ids == ctx.aux_ids:
            denominator = table.denominator
            own = table.own_delivery(ctx.self_id)
        else:
            p = ctx.p
            src, dst = ctx.src, ctx.dst
            p_src_dst = p(src, dst)  # loop-invariant factor of Eq. 3
            denominator = 0.0
            for aux in ctx.aux_ids:
                c_i = p(src, aux) * (1.0 - p_src_dst * p(dst, aux))
                denominator += c_i * p(aux, dst)
            own = None
        if denominator <= 0.0:
            return 1.0
        if own is None:
            own = ctx.p(ctx.self_id, ctx.dst)
        if own <= 0.0:
            # No known path to the destination; Eq. 2 assigns zero
            # weight (and guards inf * 0 when the denominator is
            # subnormal).
            return 0.0
        r = 1.0 / denominator
        return min(r * own, 1.0)


class IgnoreOthersStrategy(RelayStrategy):
    """Ablation NotG1: each auxiliary decides as if it were alone.

    "Each relays with a probability equal to its delivery ratio to the
    destination."  With many auxiliaries this over-relays: the paper
    observes its false-positive rate grows rapidly with the number of
    auxiliary BSes.
    """

    name = "not-g1"
    # uses_table stays False: the whole computation is one p(self, dst)
    # lookup, cheaper than building/validating a table for it.  (A
    # table handed in anyway is still honored below.)

    def relay_probability(self, ctx):
        table = ctx.table
        if table is not None:
            own = table.own_delivery(ctx.self_id)
            if own is not None:
                return min(max(own, 0.0), 1.0)
        return min(max(ctx.p(ctx.self_id, ctx.dst), 0.0), 1.0)


class IgnoreDestConnectivityStrategy(RelayStrategy):
    """Ablation NotG2: ignore who is better placed to deliver.

    "Each relays with a probability equal to ``1 / sum_i c_i``" — the
    expected number of relays is still one (G3 holds), but a poorly
    connected auxiliary relays as often as a well connected one, so
    relays are wasted.
    """

    name = "not-g2"
    uses_table = True

    def relay_probability(self, ctx):
        table = ctx.table
        if table is not None and table.aux_ids == ctx.aux_ids:
            total_contention = table.total_contention
        else:
            total_contention = 0.0
            for aux in ctx.aux_ids:
                total_contention += contention_probability(
                    ctx.p, ctx.src, ctx.dst, aux
                )
        if total_contention <= 0.0:
            return 1.0
        return min(1.0 / total_contention, 1.0)


class ExpectedDeliveryStrategy(RelayStrategy):
    """Ablation NotG3: expect one packet *received*, not one *relayed*.

    The optimization ``min sum_i r_i c_i`` subject to
    ``sum_i r_i p(Bi,d) c_i >= 1`` has the greedy water-filling
    solution the paper gives: order auxiliaries by descending
    ``p(Bi,d)``; set ``r_i = 1`` until the constraint is met, then give
    the marginal auxiliary the fractional remainder:

    * ``r_i = 0``            if ``s_i > 1``
    * ``r_i = 1``            if ``s_i + p(Bi,d) * c_i < 1``
    * ``r_i = (1 - s_i) / (p(Bi,d) * c_i)``  otherwise,

    where ``s_i = sum over j with p(Bj,d) >= p(Bi,d), j != i of
    p(Bj,d) * c_j * r_j`` accumulated greedily.  Because at least one
    relayed copy must arrive in expectation, the number of relayed
    transmissions balloons when links are weak — Table 2 measures 157%
    false positives.
    """

    name = "not-g3"

    def relay_probability(self, ctx):
        p = ctx.p
        entries = []
        for aux in ctx.aux_ids:
            c_i = contention_probability(p, ctx.src, ctx.dst, aux)
            entries.append((p(aux, ctx.dst), c_i, aux))
        # Descending delivery probability; deterministic tie-break.
        entries.sort(key=lambda e: (-e[0], e[2]))
        accumulated = 0.0
        for p_id, c_i, aux in entries:
            contribution = p_id * c_i
            if accumulated > 1.0:
                r_i = 0.0
            elif accumulated + contribution < 1.0:
                r_i = 1.0
            elif contribution > 0.0:
                r_i = (1.0 - accumulated) / contribution
            else:
                r_i = 0.0
            if aux == ctx.self_id:
                return min(max(r_i, 0.0), 1.0)
            accumulated += contribution * r_i
        return 0.0


_STRATEGIES = {
    cls.name: cls
    for cls in (
        ViFiRelayStrategy,
        IgnoreOthersStrategy,
        IgnoreDestConnectivityStrategy,
        ExpectedDeliveryStrategy,
    )
}


def make_strategy(name):
    """Instantiate a relay strategy by name.

    Known names: ``"vifi"``, ``"not-g1"``, ``"not-g2"``, ``"not-g3"``.
    """
    try:
        return _STRATEGIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown relay strategy {name!r}; "
            f"choose from {sorted(_STRATEGIES)}"
        ) from None
