"""Adaptive retransmission timing (Section 4.7).

"Acknowledgments in ViFi may be delayed if they are generated in
response to a relayed packet ... thus retransmission timers must be set
based on current network conditions.  The ViFi source sets the
retransmit timer adaptively based on the observed delays in receiving
acknowledgments ... The source then picks as the minimum retransmission
time the 99th percentile of measured delays.  Picking this high
percentile means that sources err towards waiting longer when
conditions change rather than retransmitting spuriously."
"""

import bisect
from collections import deque

__all__ = ["AdaptiveRetxTimer"]


class AdaptiveRetxTimer:
    """Tracks ack delays; yields the 99th-percentile retransmit timeout.

    A bounded window of the most recent delay samples is kept in sorted
    order (insertion via bisect), so percentile queries are O(1) and
    sample ingestion is O(window).

    Args:
        initial_s: timeout before any sample has been observed.
        floor_s: lower bound on the timeout regardless of samples (an
            ack can never be faster than two frame airtimes).
        percentile: percentile of observed delays to use (paper: 99).
        window: number of recent samples retained.
    """

    def __init__(self, initial_s=0.08, floor_s=0.01, percentile=99.0,
                 window=500):
        if not 0 < percentile <= 100:
            raise ValueError("percentile must be in (0, 100]")
        if window < 1:
            raise ValueError("window must be at least 1")
        self.initial = float(initial_s)
        self.floor = float(floor_s)
        self.percentile = float(percentile)
        self.window = int(window)
        self._sorted = []
        self._fifo = deque()

    def add_sample(self, delay_s):
        """Record one observed transmission-to-ack delay."""
        if delay_s < 0:
            raise ValueError("ack delay cannot be negative")
        delay_s = float(delay_s)
        self._fifo.append(delay_s)
        bisect.insort(self._sorted, delay_s)
        if len(self._fifo) > self.window:
            oldest = self._fifo.popleft()
            index = bisect.bisect_left(self._sorted, oldest)
            self._sorted.pop(index)

    @property
    def sample_count(self):
        return len(self._fifo)

    def timeout(self):
        """Current retransmission timeout (seconds)."""
        if not self._sorted:
            return max(self.initial, self.floor)
        rank = int(len(self._sorted) * self.percentile / 100.0)
        rank = min(rank, len(self._sorted) - 1)
        return max(self._sorted[rank], self.floor)
