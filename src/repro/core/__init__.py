"""ViFi: the paper's primary contribution (Section 4).

ViFi minimizes connectivity disruptions for vehicular WiFi clients by
exploiting basestation diversity: the vehicle designates an *anchor*
BS (chosen with BRR) and treats every other BS it hears as an
*auxiliary*.  Auxiliaries that opportunistically overhear a data packet
but not its acknowledgment relay the packet probabilistically, with the
relay probabilities computed so the *expected* number of relayed copies
across all auxiliaries is one, preferring auxiliaries better connected
to the destination.

Package layout:

* :mod:`repro.core.relaying` — relay-probability computation: the ViFi
  formulation (guidelines G1-G3, Eqs. 1-3) and the three ablations of
  Section 5.5.1 (each violates one guideline).
* :mod:`repro.core.probabilities` — beacon-based estimation and
  dissemination of pairwise reception probabilities (Section 4.6).
* :mod:`repro.core.retransmit` — the adaptive retransmission timer
  (99th percentile of observed ack delays, Section 4.7).
* :mod:`repro.core.node` — the vehicle and basestation protocol
  engines, including salvaging (Section 4.5).
* :mod:`repro.core.protocol` — experiment wiring: medium, backplane,
  nodes, Internet gateway, and the application-facing API.
* :mod:`repro.core.stats` — per-transmission logs and the Table 1
  coordination statistics.
* :mod:`repro.core.perfect` — the PerfectRelay oracle estimated from
  ViFi logs (Section 5.4).
"""

from repro.core.perfect import perfect_relay_efficiency
from repro.core.probabilities import EstimatorBank, ReceptionEstimator
from repro.core.protocol import ViFiConfig, ViFiSimulation
from repro.core.relaying import (
    ExpectedDeliveryStrategy,
    IgnoreDestConnectivityStrategy,
    IgnoreOthersStrategy,
    RelayContext,
    ViFiRelayStrategy,
    make_strategy,
)
from repro.core.retransmit import AdaptiveRetxTimer
from repro.core.stats import ViFiStats

__all__ = [
    "AdaptiveRetxTimer",
    "EstimatorBank",
    "ExpectedDeliveryStrategy",
    "IgnoreDestConnectivityStrategy",
    "IgnoreOthersStrategy",
    "ReceptionEstimator",
    "RelayContext",
    "ViFiConfig",
    "ViFiRelayStrategy",
    "ViFiSimulation",
    "ViFiStats",
    "make_strategy",
    "perfect_relay_efficiency",
]
