"""Reception-probability estimation and dissemination (Section 4.6).

"A ViFi node estimates the reception probability from another node to
itself using the number of beacons received in a given time interval
divided by the number that must have been sent.  Incoming reception
probabilities are maintained as exponential averages (alpha = 0.5) over
per-second beacon reception ratio.  In their beacons, nodes embed the
current incoming reception probability from all nodes that they heard
from in the last interval.  They also embed the packet reception
probability from them to other nodes, which they learn from the beacons
of those other nodes."

So a single beacon from node X teaches a listener both ``p(* -> X)``
(X's first-hand incoming estimates) and ``p(X -> *)`` (X's second-hand
knowledge of its outgoing quality).  An auxiliary therefore learns every
probability the relay computation needs purely by listening, with no
extra coordination traffic.

**Fast path.**  Beacon ingest is batched per beacon round: a received
beacon is appended to a pending list (one list append on the per-frame
path) and folded into the estimator's tables the next time any query
runs — queries are an order of magnitude rarer than receptions, and the
fold runs with locals bound once per batch.  All read paths flush
first, so observable state is identical to eager ingest.  On top of
that, two caches amortize the per-beacon and per-relay-decision costs:

* :meth:`beacon_reports` — the embedded ``incoming`` map only changes
  at :meth:`tick_second` and the ``learned`` map only when a peer
  reports fresh outgoing knowledge or an entry crosses the staleness
  horizon, so both are cached with exact invalidation bounds instead
  of being rebuilt for every one of the ~10 beacons a node sends per
  second.
* :meth:`relay_table` — relay decisions for the same ``(aux set, src,
  dst)`` between state changes reuse one array-indexed
  :class:`~repro.core.relaying.RelayTable` (per-aux contention and
  delivery columns plus the precomputed Eq. 1 denominator), built with
  the same arithmetic, in the same accumulation order, as the scalar
  strategy loops — cached values are bit-for-bit what the uncached
  computation would produce, with validity bounded by the estimator's
  version counter and the earliest staleness expiry consulted.

**Estimator modes.**  Two implementations share one interface:

* :class:`ReceptionEstimator` (``estimator="dict"``) — the historical
  per-node dict estimator, kept verbatim so legacy-knob runs stay
  digest-anchored (see ``tests/test_estimator_bank.py``).  It carries
  two known quirks preserved for bitwise lineage: the owning node
  schedules its first fold at ``1.0 + phase`` yet the fold normalizes
  by one second's beacon budget (early incoming estimates bias high,
  clipped at 1.0), and per-peer dissemination state
  (``_last_heard`` / ``_reports`` / ``_report_epoch`` / ``_outgoing``)
  is never pruned, so it grows with every peer ever heard.
* :class:`EstimatorBank` + its per-node views (``estimator="array"``,
  the default) — one simulation-wide struct-of-arrays estimator:
  node ids map to integer rows, per-second heard counts live in one
  ``(N, N)`` array, and a **single** per-second simulator event folds
  every node's exponential averages in one vectorized pass (replacing
  N per-node ``_second_tick`` heap events).  The bank also fixes both
  quirks above: its fold event is period-aligned with its own window
  (the first fold covers exactly one second), and a peer silent past
  the staleness horizon is dropped from every per-node table, so
  per-peer state stays bounded by the live-peer count.
"""

import math
import time

import numpy as np

from repro.core.relaying import RelayTable

__all__ = ["EstimatorBank", "ReceptionEstimator"]


class ReceptionEstimator:
    """Per-node estimator and dissemination table for ``p(a -> b)``.

    Args:
        node_id: owning node.
        beacons_per_second: nominal beacon rate of every node (the
            "number that must have been sent" per second).
        alpha: exponential averaging factor (paper: 0.5).
        stale_s: age after which a table entry is distrusted.
        forget_below: incoming averages below this are dropped, so BSes
            left behind stop being considered.
    """

    #: Relay-table cache entries kept before the cache is reset (aux
    #: sets churn as the vehicle moves; old keys never come back).
    _RELAY_CACHE_MAX = 64

    def __init__(self, node_id, beacons_per_second=10, alpha=0.5,
                 stale_s=5.0, forget_below=0.01):
        self.node_id = node_id
        self.beacons_per_second = int(beacons_per_second)
        self.alpha = float(alpha)
        self.stale_s = float(stale_s)
        self.forget_below = float(forget_below)
        self._heard_this_second = {}
        self._incoming = {}
        self._last_heard = {}
        # Dissemination state is the latest report maps of each sender,
        # stored by reference: ``sender -> (arrived_at, incoming,
        # learned)``.  Ingesting a beacon is then O(1) instead of
        # merging every embedded entry into a tuple-keyed table (the
        # old scheme burned ~6% of a protocol run hashing pair keys),
        # and memory stays bounded by the node count.  Queries combine
        # the two possible sources for ``p(a -> b)`` — b's first-hand
        # ``incoming[a]`` and a's second-hand ``learned[b]`` — newest
        # fresh report winning, which matches the merged-table
        # behaviour except that an entry a sender stopped reporting
        # expires with that sender's next beacon rather than lingering
        # until ``stale_s`` (such entries had already decayed to ~0).
        self._reports = {}
        # This node's outgoing quality p(self -> peer) as last reported
        # by each peer, for beacon construction.
        self._outgoing = {}
        # Beacons received but not yet folded in (see module docstring).
        self._pending = []
        # Change epochs for exact cache invalidation: one per report
        # sender (bumped when that sender's report is replaced) and one
        # for the first-hand averages (bumped per second tick).  The
        # relay-table cache validates against exactly the epochs of the
        # participants it consulted, so unrelated beacon traffic does
        # not evict it.
        self._report_epoch = {}
        self._incoming_epoch = 0
        self._incoming_snapshot = None
        # Incrementally maintained beacon ``learned`` map: flush keeps
        # it current; a full rebuild only runs when the earliest
        # staleness expiry passes (see beacon_reports).  Once handed to
        # a beacon the map is *shared* — receivers keep it by
        # reference — so the next mutation copies first (copy-on-write)
        # and sent beacons stay frozen.
        self._learned_live = {}
        self._learned_shared = False
        self._learned_expiry = math.inf
        self._relay_tables = {}

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------

    def on_beacon(self, beacon, now):
        """Record one received beacon; folded in at the next query."""
        self._pending.append((beacon, now))

    def _flush(self):
        """Fold the pending beacon batch into the tables, in order."""
        pending = self._pending
        if not pending:
            return
        self._pending = []
        heard = self._heard_this_second
        last_heard = self._last_heard
        reports = self._reports
        report_epoch = self._report_epoch
        outgoing = self._outgoing
        learned_live = self._learned_live
        node_id = self.node_id
        stale_s = self.stale_s
        learned_expiry = self._learned_expiry
        for beacon, now in pending:
            sender = beacon.sender
            try:
                heard[sender] += 1
            except KeyError:
                heard[sender] = 1
            last_heard[sender] = now
            incoming = beacon.incoming
            reports[sender] = (now, incoming, beacon.learned)
            try:
                report_epoch[sender] += 1
            except KeyError:
                report_epoch[sender] = 1
            # Reports about this node itself are kept too: the sender's
            # ``incoming[self]`` is p(self -> sender), i.e. this node's
            # own *outgoing* quality, which it cannot measure
            # first-hand and which the relay computation needs
            # (p(Bx -> dst)).
            mine = incoming.get(node_id)
            if mine is not None:
                outgoing[sender] = (mine, now)
                if self._learned_shared:
                    learned_live = self._learned_live = dict(learned_live)
                    self._learned_shared = False
                learned_live[sender] = mine
                expires = now + stale_s
                if expires < learned_expiry:
                    learned_expiry = expires
        self._learned_expiry = learned_expiry

    def tick_second(self, now):
        """Fold the elapsed second into the exponential averages.

        Every known peer contributes a sample: its beacon reception
        ratio this second, zero if silent.  Peers whose average decays
        below ``forget_below`` are forgotten.
        """
        if self._pending:
            self._flush()
        peers = set(self._incoming) | set(self._heard_this_second)
        for peer in peers:
            ratio = min(
                self._heard_this_second.get(peer, 0)
                / self.beacons_per_second,
                1.0,
            )
            previous = self._incoming.get(peer, 0.0)
            self._incoming[peer] = (
                self.alpha * ratio + (1 - self.alpha) * previous
            )
        self._heard_this_second = {}
        for peer in [p for p, v in self._incoming.items()
                     if v < self.forget_below]:
            del self._incoming[peer]
        self._incoming_snapshot = None
        self._incoming_epoch += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def incoming_probability(self, peer):
        """First-hand estimate of ``p(peer -> self)``."""
        return self._incoming.get(peer, 0.0)

    def incoming_estimates(self):
        """Snapshot of all first-hand incoming estimates."""
        return dict(self._incoming)

    def heard_recently(self, peer, now, within_s):
        """Was a beacon from *peer* heard within the last *within_s*?"""
        if self._pending:
            self._flush()
        last = self._last_heard.get(peer)
        return last is not None and (now - last) <= within_s

    def peers_heard_within(self, now, within_s):
        """All peers whose beacons were heard within *within_s*."""
        if self._pending:
            self._flush()
        return [
            peer for peer, last in self._last_heard.items()
            if (now - last) <= within_s
        ]

    def probability(self, a, b, now):
        """Best known estimate of ``p(a -> b)``; 0 when unknown/stale.

        First-hand knowledge (``b`` is this node) wins; otherwise the
        dissemination table is consulted, subject to freshness.
        """
        if self._pending:
            self._flush()
        if a == b:
            return 1.0
        if b == self.node_id:
            return self._incoming.get(a, 0.0)
        stale_s = self.stale_s
        reports = self._reports
        best = 0.0
        best_ts = None
        from_b = reports.get(b)
        if from_b is not None and now - from_b[0] <= stale_s:
            prob = from_b[1].get(a)
            if prob is not None:
                best = prob
                best_ts = from_b[0]
        from_a = reports.get(a)
        if from_a is not None and now - from_a[0] <= stale_s:
            prob = from_a[2].get(b)
            if prob is not None and (best_ts is None or from_a[0] > best_ts):
                best = prob
        return best

    def _probability_ts(self, a, b, now):
        """``(probability, change_bound)`` for the relay-table cache.

        Same value as :meth:`probability` (the caller has flushed);
        ``change_bound`` is the earliest future instant at which this
        answer could change *without* a version bump — the staleness
        expiry of any accepted report.  A report that is already stale
        stays stale (time is monotone), and absent/first-hand entries
        only change with the version, so their bound is infinite.
        """
        if a == b:
            return 1.0, math.inf
        if b == self.node_id:
            return self._incoming.get(a, 0.0), math.inf
        stale_s = self.stale_s
        reports = self._reports
        best = 0.0
        best_ts = None
        bound = math.inf
        from_b = reports.get(b)
        if from_b is not None and now - from_b[0] <= stale_s:
            expires = from_b[0] + stale_s
            if expires < bound:
                bound = expires
            prob = from_b[1].get(a)
            if prob is not None:
                best = prob
                best_ts = from_b[0]
        from_a = reports.get(a)
        if from_a is not None and now - from_a[0] <= stale_s:
            expires = from_a[0] + stale_s
            if expires < bound:
                bound = expires
            prob = from_a[2].get(b)
            if prob is not None and (best_ts is None or from_a[0] > best_ts):
                best = prob
        return best, bound

    def relay_table(self, aux_ids, src, dst, now):
        """Cached :class:`~repro.core.relaying.RelayTable` for a decision.

        Every probability the table holds depends only on the reports
        of the participants (``src``, ``dst`` and the auxiliaries),
        the first-hand averages, and staleness at *now*; the cache
        entry therefore stores those participants' report epochs plus
        the earliest staleness expiry consulted, and stays valid —
        bit-for-bit what a fresh build would produce — until one of
        them changes.  Unrelated beacon traffic never evicts it.
        """
        if self._pending:
            self._flush()
        key = (aux_ids, src, dst)
        cached = self._relay_tables.get(key)
        if cached is not None and now <= cached[1] \
                and cached[3] == self._incoming_epoch:
            report_epoch = self._report_epoch
            for participant, epoch in cached[0]:
                if report_epoch.get(participant, 0) != epoch:
                    break
            else:
                return cached[2]
        if len(self._relay_tables) > self._RELAY_CACHE_MAX:
            self._relay_tables.clear()
        bound = math.inf

        def lookup(a, b):
            nonlocal bound
            value, expires = self._probability_ts(a, b, now)
            if expires < bound:
                bound = expires
            return value

        table = RelayTable(aux_ids, src, dst, lookup)
        report_epoch = self._report_epoch
        participants = tuple(
            (participant, report_epoch.get(participant, 0))
            for participant in (src, dst) + aux_ids
        )
        self._relay_tables[key] = (participants, bound, table,
                                   self._incoming_epoch)
        return table

    def probability_lookup(self, now):
        """A ``(a, b) -> p`` callable bound to the current time."""
        def lookup(a, b):
            return self.probability(a, b, now)
        return lookup

    # ------------------------------------------------------------------
    # Beacon payload construction
    # ------------------------------------------------------------------

    def beacon_reports(self, now):
        """Build the (incoming, learned) maps to embed in a beacon.

        ``incoming`` carries this node's first-hand estimates
        ``p(peer -> self)``; ``learned`` carries its second-hand
        knowledge of its own outgoing quality ``p(self -> peer)``.

        Both maps are cached between state changes (see the module
        docstring); successive beacons within one estimator epoch share
        the same dict objects, whose contents equal a fresh rebuild.
        Callers treat the maps as immutable.
        """
        if self._pending:
            self._flush()
        incoming = self._incoming_snapshot
        if incoming is None:
            incoming = self._incoming_snapshot = dict(self._incoming)
        if now > self._learned_expiry:
            # The earliest staleness expiry passed: prune by rebuilding
            # from the timestamps.  (Expiry is a lower bound — an entry
            # refreshed since may extend it — so rebuilds can only run
            # early, never late: the live map never serves stale rows.)
            stale_s = self.stale_s
            expiry = math.inf
            learned = {}
            for peer, (prob, ts) in self._outgoing.items():
                if now - ts <= stale_s:
                    learned[peer] = prob
                    expires = ts + stale_s
                    if expires < expiry:
                        expiry = expires
            self._learned_live = learned
            self._learned_expiry = expiry
        self._learned_shared = True
        return incoming, self._learned_live


class EstimatorBank:
    """Simulation-wide struct-of-arrays reception estimator.

    One bank serves every node: node ids map to integer rows through
    :attr:`index`, the per-second heard counts live in one ``(N, N)``
    array, and the exponential averages live in :attr:`incoming`
    (``incoming[i, j]`` is node *i*'s first-hand estimate of
    ``p(j -> i)``).  The fold — one :meth:`tick_second` — replaces the
    N per-node ``_second_tick`` heap events of the dict mode with a
    **single** per-second simulator event: every view's pending beacon
    batch is flushed, the heard counts are scattered with one
    ``bincount`` per node, and the averages fold in one vectorized
    pass whose arithmetic (``alpha * ratio + (1 - alpha) * previous``
    over ``min(count / beacons_per_second, 1.0)``) is term-for-term
    the dict fold, so a view and a dict estimator fed the same beacons
    and ticked at the same instants agree bit for bit.

    Differences from the dict mode, by design (both are the bugfixes
    this bank ships; full-trip protocol runs are therefore a
    different, distributionally equivalent realization):

    * **Period-aligned first fold.**  The bank arms its own event one
      second after the first node registers, so the first fold window
      is exactly one second — the dict path folds at ``1.0 + phase``
      but still normalizes by one second's beacon budget, biasing
      early estimates high.
    * **Bounded peer state.**  A peer silent past the staleness
      horizon can no longer affect any query (``probability`` rejects
      its reports, ``beacon_reports`` rebuilds skip it), so each fold
      drops its reports/outgoing entries; per-node dissemination
      state stays bounded by the live-peer count instead of growing
      with every peer ever heard.  Consequently recency queries
      (:meth:`BankedReceptionEstimator.heard_recently`) beyond
      ``stale_s`` answer ``False``; the protocol only asks within
      ``aux_recent_s`` (2 s against a 5 s horizon).

    The node universe is closed at construction: every beacon sender
    must be one of *node_ids* (the protocol registers the vehicle and
    all basestations up front).

    Args:
        node_ids: all participating node ids, in row order.
        beacons_per_second / alpha / stale_s / forget_below: as for
            :class:`ReceptionEstimator`.
        sim: optional simulator; when given, the bank arms its single
            per-second event on the first :meth:`register` call.
            Standalone (unit-test) banks call :meth:`tick_second`
            directly.
    """

    def __init__(self, node_ids, beacons_per_second=10, alpha=0.5,
                 stale_s=5.0, forget_below=0.01, sim=None):
        self.ids = tuple(node_ids)
        self.index = {nid: i for i, nid in enumerate(self.ids)}
        if len(self.index) != len(self.ids):
            raise ValueError("duplicate node ids in estimator bank")
        n = len(self.ids)
        self.n = n
        self.beacons_per_second = int(beacons_per_second)
        self.alpha = float(alpha)
        self.stale_s = float(stale_s)
        self.forget_below = float(forget_below)
        self.sim = sim
        #: ``incoming[i, j]`` = row-i node's exponential average of
        #: ``p(j -> i)``; zero cells are unknown/forgotten peers.
        self.incoming = np.zeros((n, n), dtype=np.float64)
        # Per-second heard counts, scattered from the views' row
        # buffers at fold time (float64 so the fold needs no cast).
        self._heard = np.zeros((n, n), dtype=np.float64)
        #: Fold epoch; bumped once per tick (every view's snapshot and
        #: relay-table validity is keyed to it).
        self.epoch = 0
        #: Folds run and wall seconds spent folding — reported by the
        #: perf bench as ``estimator_fold_s``.
        self.fold_count = 0
        self.fold_wall_s = 0.0
        self._views = {}
        self._nodes = []
        self._armed = False

    def view(self, node_id):
        """The per-node facade for *node_id* (created on first use)."""
        facade = self._views.get(node_id)
        if facade is None:
            if node_id not in self.index:
                raise KeyError(f"node {node_id!r} is not in this bank")
            facade = self._views[node_id] = \
                BankedReceptionEstimator(self, node_id)
        return facade

    def register(self, node):
        """Register a protocol node for the shared per-second tick.

        The first registration arms the bank's single fire-and-forget
        event exactly one second ahead (period-aligned: the first fold
        window is one second long — the first-tick bugfix).  Each tick
        folds every view, then calls every registered node's
        ``on_second`` hook in registration order.
        """
        self._nodes.append(node)
        if not self._armed:
            if self.sim is None:
                raise ValueError(
                    "EstimatorBank.register needs a simulator; "
                    "standalone banks drive tick_second directly"
                )
            self._armed = True
            self.sim.schedule_fire(1.0, self._tick)

    def _tick(self):
        now = self.sim.now
        self.tick_second(now)
        for node in self._nodes:
            node.on_second()
        self.sim.schedule_fire(1.0, self._tick)

    def tick_second(self, now):
        """Fold the elapsed second for every node in one pass."""
        t0 = time.perf_counter()
        n = self.n
        heard = self._heard
        heard[:] = 0.0
        views = self._views.values()
        for facade in views:
            if facade._pending:
                facade._flush()
            rows = facade._heard_rows
            if rows:
                heard[facade._row] = np.bincount(rows, minlength=n)
                del facade._heard_rows[:]
        # Same expressions, same IEEE-754 ops as the dict fold:
        # ratio = min(count / bps, 1.0); avg = alpha*ratio +
        # (1-alpha)*previous (addition order is commutative bitwise).
        ratio = np.minimum(heard / float(self.beacons_per_second), 1.0)
        incoming = self.incoming
        incoming *= (1.0 - self.alpha)
        incoming += self.alpha * ratio
        # Forgetting: the dict mode deletes averages below the
        # threshold; zero cells answer queries identically.
        incoming[incoming < self.forget_below] = 0.0
        self.epoch += 1
        for facade in views:
            facade._on_fold(now)
        self.fold_count += 1
        self.fold_wall_s += time.perf_counter() - t0


class BankedReceptionEstimator:
    """Per-node view onto an :class:`EstimatorBank`.

    Drop-in for :class:`ReceptionEstimator` on every query path the
    protocol uses.  First-hand state (heard counts, exponential
    averages) lives in the bank's shared arrays; dissemination state
    (latest report per sender, outgoing quality, the copy-on-write
    ``learned`` map, the relay-table cache) stays per-node, stored by
    reference exactly like the dict mode — but pruned at each fold
    once a peer falls past the staleness horizon, so it is bounded by
    the live-peer count.

    Beacon ingest appends to the per-node pending buffer; queries
    flush first, so observable state is identical to eager ingest.
    The flush is leaner than the dict mode's: heard counts are one
    list append (scattered via ``bincount`` at the fold) and the
    relay-table cache validates against report tuple *identity*
    instead of a per-sender epoch counter, dropping two dict updates
    from the per-beacon path.  ``_last_heard`` is gone entirely —
    recency queries read the report timestamps, which flush writes
    anyway.
    """

    _RELAY_CACHE_MAX = ReceptionEstimator._RELAY_CACHE_MAX

    __slots__ = (
        "bank", "node_id", "_row", "_row_view", "_row_floats", "_index",
        "stale_s", "_pending", "_heard_rows", "_reports", "_outgoing",
        "_incoming_snapshot", "_learned_live", "_learned_shared",
        "_learned_expiry", "_relay_tables",
    )

    def __init__(self, bank, node_id):
        self.bank = bank
        self.node_id = node_id
        self._row = bank.index[node_id]
        # A view into the bank's matrix: the fold mutates in place, so
        # the row view is always current.  The python-float copy of it
        # is rebuilt lazily once per fold epoch — averages only change
        # at folds — so scalar reads skip per-call numpy extraction.
        self._row_view = bank.incoming[self._row]
        self._row_floats = None
        self._index = bank.index
        self.stale_s = bank.stale_s
        self._pending = []
        self._heard_rows = []
        # sender -> (arrived_at, incoming, learned), by reference —
        # the report maps double as the last-heard clock.
        self._reports = {}
        self._outgoing = {}
        self._incoming_snapshot = None
        self._learned_live = {}
        self._learned_shared = False
        self._learned_expiry = math.inf
        self._relay_tables = {}

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------

    def on_beacon(self, beacon, now):
        """Record one received beacon; folded in at the next query."""
        self._pending.append((beacon, now))

    def _flush(self):
        """Fold the pending beacon batch into the tables, in order."""
        pending = self._pending
        if not pending:
            return
        self._pending = []
        rows = self._heard_rows
        index = self._index
        reports = self._reports
        outgoing = self._outgoing
        learned_live = self._learned_live
        node_id = self.node_id
        stale_s = self.stale_s
        learned_expiry = self._learned_expiry
        for beacon, now in pending:
            sender = beacon.sender
            rows.append(index[sender])
            incoming = beacon.incoming
            reports[sender] = (now, incoming, beacon.learned)
            mine = incoming.get(node_id)
            if mine is not None:
                outgoing[sender] = (mine, now)
                if self._learned_shared:
                    learned_live = self._learned_live = dict(learned_live)
                    self._learned_shared = False
                learned_live[sender] = mine
                expires = now + stale_s
                if expires < learned_expiry:
                    learned_expiry = expires
        self._learned_expiry = learned_expiry

    def _row_list(self):
        """This node's averages as python floats (epoch-cached)."""
        row = self._row_floats
        if row is None:
            row = self._row_floats = self._row_view.tolist()
        return row

    def _on_fold(self, now):
        """Bank callback after the vectorized fold of one second."""
        self._incoming_snapshot = None
        self._row_floats = None
        # Bounded peer state: a report past the staleness horizon can
        # never be served again (probability rejects it, the learned
        # rebuild skips it), so drop it — and the peer's outgoing
        # entry — instead of keeping every peer ever heard.
        stale_s = self.stale_s
        reports = self._reports
        if reports:
            dead = [s for s, rep in reports.items()
                    if now - rep[0] > stale_s]
            for s in dead:
                del reports[s]
        outgoing = self._outgoing
        if outgoing:
            dead = [s for s, (_, ts) in outgoing.items()
                    if now - ts > stale_s]
            for s in dead:
                del outgoing[s]

    def tick_second(self, now):
        """Fold the elapsed second — for the *whole* owning bank.

        Standalone convenience that makes a view a drop-in for
        :class:`ReceptionEstimator` in unit scenarios; the protocol
        never calls it (the bank's own per-second event folds every
        view at once).
        """
        self.bank.tick_second(now)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def incoming_probability(self, peer):
        """First-hand estimate of ``p(peer -> self)``."""
        j = self._index.get(peer)
        return self._row_list()[j] if j is not None else 0.0

    def incoming_estimates(self):
        """Snapshot of all first-hand incoming estimates."""
        ids = self.bank.ids
        return {ids[j]: value
                for j, value in enumerate(self._row_list())
                if value}

    def heard_recently(self, peer, now, within_s):
        """Was a beacon from *peer* heard within the last *within_s*?

        Answers from the report clock; peers silent past ``stale_s``
        are pruned, so horizons beyond it saturate at ``False``.
        """
        if self._pending:
            self._flush()
        rep = self._reports.get(peer)
        return rep is not None and (now - rep[0]) <= within_s

    def peers_heard_within(self, now, within_s):
        """All peers whose beacons were heard within *within_s*."""
        if self._pending:
            self._flush()
        return [
            peer for peer, rep in self._reports.items()
            if (now - rep[0]) <= within_s
        ]

    def probability(self, a, b, now):
        """Best known estimate of ``p(a -> b)``; 0 when unknown/stale."""
        if self._pending:
            self._flush()
        if a == b:
            return 1.0
        if b == self.node_id:
            j = self._index.get(a)
            return self._row_list()[j] if j is not None else 0.0
        stale_s = self.stale_s
        reports = self._reports
        best = 0.0
        best_ts = None
        from_b = reports.get(b)
        if from_b is not None and now - from_b[0] <= stale_s:
            prob = from_b[1].get(a)
            if prob is not None:
                best = prob
                best_ts = from_b[0]
        from_a = reports.get(a)
        if from_a is not None and now - from_a[0] <= stale_s:
            prob = from_a[2].get(b)
            if prob is not None and (best_ts is None or from_a[0] > best_ts):
                best = prob
        return best

    def probability_lookup(self, now):
        """A ``(a, b) -> p`` callable bound to the current time."""
        def lookup(a, b):
            return self.probability(a, b, now)
        return lookup

    def relay_table(self, aux_ids, src, dst, now):
        """Cached :class:`~repro.core.relaying.RelayTable` for a decision.

        Same contract as the dict mode's — cached tables are
        bit-for-bit what a fresh build would produce — with two
        array-mode twists: cache validity is the *identity* of each
        participant's report tuple (no per-sender epoch dict), and
        the build prefetches the src/dst reports once instead of
        re-fetching them for each of the 3K+1 probability lookups,
        accumulating the Eq. 1 sums with exactly the arithmetic, in
        exactly the order, of :class:`RelayTable`'s own constructor.
        """
        if self._pending:
            self._flush()
        key = (aux_ids, src, dst)
        cached = self._relay_tables.get(key)
        if cached is not None and now <= cached[1] \
                and cached[3] == self.bank.epoch:
            reports = self._reports
            for participant, report in cached[0]:
                if reports.get(participant) is not report:
                    break
            else:
                return cached[2]
        if len(self._relay_tables) > self._RELAY_CACHE_MAX:
            self._relay_tables.clear()
        stale_s = self.stale_s
        reports = self._reports
        node_id = self.node_id
        row = self._row_list()
        index = self._index
        bound = math.inf
        # Prefetch the src/dst reports once (the generic path fetched
        # them for every one of the 3K+1 lookups); consulting a fresh
        # report narrows the validity bound to its staleness expiry,
        # exactly as _probability_ts does.  The per-aux probability
        # logic below is probability() inlined over the prefetched
        # reports — the build is the hottest estimator query path, and
        # the closure frames were a measurable share of it.
        from_src = reports.get(src)
        if from_src is not None:
            if now - from_src[0] > stale_s:
                from_src = None
            else:
                bound = from_src[0] + stale_s
        from_dst = reports.get(dst)
        if from_dst is not None:
            if now - from_dst[0] > stale_s:
                from_dst = None
            else:
                expires = from_dst[0] + stale_s
                if expires < bound:
                    bound = expires
        # p(src -> dst): dst is never this node — nor equal to src —
        # in a relay decision, but the general cases cost one extra
        # comparison each.
        if src == dst:
            p_src_dst = 1.0
        elif dst == node_id:
            j = index.get(src)
            p_src_dst = row[j] if j is not None else 0.0
        else:
            p_src_dst = 0.0
            best_ts = None
            if from_dst is not None:
                prob = from_dst[1].get(src)
                if prob is not None:
                    p_src_dst = prob
                    best_ts = from_dst[0]
            if from_src is not None:
                prob = from_src[2].get(dst)
                if prob is not None \
                        and (best_ts is None or from_src[0] > best_ts):
                    p_src_dst = prob
        k = len(aux_ids)
        contention = np.empty(k, dtype=np.float64)
        p_to_dst = np.empty(k, dtype=np.float64)
        denominator = 0.0
        total_contention = 0.0
        for i, aux in enumerate(aux_ids):
            from_aux = reports.get(aux)
            if from_aux is not None:
                if now - from_aux[0] > stale_s:
                    from_aux = None
                else:
                    expires = from_aux[0] + stale_s
                    if expires < bound:
                        bound = expires
            aux_is_self = aux == node_id
            # p(src -> aux)
            if src == aux:
                p_s_a = 1.0
            elif aux_is_self:
                j = index.get(src)
                p_s_a = row[j] if j is not None else 0.0
            else:
                p_s_a = 0.0
                best_ts = None
                if from_aux is not None:
                    prob = from_aux[1].get(src)
                    if prob is not None:
                        p_s_a = prob
                        best_ts = from_aux[0]
                if from_src is not None:
                    prob = from_src[2].get(aux)
                    if prob is not None \
                            and (best_ts is None or from_src[0] > best_ts):
                        p_s_a = prob
            # p(dst -> aux)
            if dst == aux:
                p_d_a = 1.0
            elif aux_is_self:
                j = index.get(dst)
                p_d_a = row[j] if j is not None else 0.0
            else:
                p_d_a = 0.0
                best_ts = None
                if from_aux is not None:
                    prob = from_aux[1].get(dst)
                    if prob is not None:
                        p_d_a = prob
                        best_ts = from_aux[0]
                if from_dst is not None:
                    prob = from_dst[2].get(aux)
                    if prob is not None \
                            and (best_ts is None or from_dst[0] > best_ts):
                        p_d_a = prob
            # p(aux -> dst)
            if aux == dst:
                p_a_d = 1.0
            elif dst == node_id:
                j = index.get(aux)
                p_a_d = row[j] if j is not None else 0.0
            else:
                p_a_d = 0.0
                best_ts = None
                if from_dst is not None:
                    prob = from_dst[1].get(aux)
                    if prob is not None:
                        p_a_d = prob
                        best_ts = from_dst[0]
                if from_aux is not None:
                    prob = from_aux[2].get(dst)
                    if prob is not None \
                            and (best_ts is None or from_aux[0] > best_ts):
                        p_a_d = prob
            c_i = p_s_a * (1.0 - p_src_dst * p_d_a)
            contention[i] = c_i
            p_to_dst[i] = p_a_d
            denominator += c_i * p_a_d
            total_contention += c_i
        table = RelayTable.from_columns(
            aux_ids, contention, p_to_dst, denominator, total_contention
        )
        participants = tuple(
            (participant, reports.get(participant))
            for participant in (src, dst) + aux_ids
        )
        self._relay_tables[key] = (participants, bound, table,
                                   self.bank.epoch)
        return table

    # ------------------------------------------------------------------
    # Beacon payload construction
    # ------------------------------------------------------------------

    def beacon_reports(self, now):
        """Build the (incoming, learned) maps to embed in a beacon.

        Identical semantics to the dict mode (COW-cached maps whose
        contents equal a fresh rebuild); the ``incoming`` snapshot is
        materialized from the bank row once per fold epoch.
        """
        if self._pending:
            self._flush()
        incoming = self._incoming_snapshot
        if incoming is None:
            ids = self.bank.ids
            incoming = self._incoming_snapshot = {
                ids[j]: value
                for j, value in enumerate(self._row_list())
                if value
            }
        if now > self._learned_expiry:
            stale_s = self.stale_s
            expiry = math.inf
            learned = {}
            for peer, (prob, ts) in self._outgoing.items():
                if now - ts <= stale_s:
                    learned[peer] = prob
                    expires = ts + stale_s
                    if expires < expiry:
                        expiry = expires
            self._learned_live = learned
            self._learned_expiry = expiry
        self._learned_shared = True
        return incoming, self._learned_live
