"""Reception-probability estimation and dissemination (Section 4.6).

"A ViFi node estimates the reception probability from another node to
itself using the number of beacons received in a given time interval
divided by the number that must have been sent.  Incoming reception
probabilities are maintained as exponential averages (alpha = 0.5) over
per-second beacon reception ratio.  In their beacons, nodes embed the
current incoming reception probability from all nodes that they heard
from in the last interval.  They also embed the packet reception
probability from them to other nodes, which they learn from the beacons
of those other nodes."

So a single beacon from node X teaches a listener both ``p(* -> X)``
(X's first-hand incoming estimates) and ``p(X -> *)`` (X's second-hand
knowledge of its outgoing quality).  An auxiliary therefore learns every
probability the relay computation needs purely by listening, with no
extra coordination traffic.
"""

__all__ = ["ReceptionEstimator"]


class ReceptionEstimator:
    """Per-node estimator and dissemination table for ``p(a -> b)``.

    Args:
        node_id: owning node.
        beacons_per_second: nominal beacon rate of every node (the
            "number that must have been sent" per second).
        alpha: exponential averaging factor (paper: 0.5).
        stale_s: age after which a table entry is distrusted.
        forget_below: incoming averages below this are dropped, so BSes
            left behind stop being considered.
    """

    def __init__(self, node_id, beacons_per_second=10, alpha=0.5,
                 stale_s=5.0, forget_below=0.01):
        self.node_id = node_id
        self.beacons_per_second = int(beacons_per_second)
        self.alpha = float(alpha)
        self.stale_s = float(stale_s)
        self.forget_below = float(forget_below)
        self._heard_this_second = {}
        self._incoming = {}
        self._last_heard = {}
        # Dissemination state is the latest report maps of each sender,
        # stored by reference: ``sender -> (arrived_at, incoming,
        # learned)``.  Ingesting a beacon is then O(1) instead of
        # merging every embedded entry into a tuple-keyed table (the
        # old scheme burned ~6% of a protocol run hashing pair keys),
        # and memory stays bounded by the node count.  Queries combine
        # the two possible sources for ``p(a -> b)`` — b's first-hand
        # ``incoming[a]`` and a's second-hand ``learned[b]`` — newest
        # fresh report winning, which matches the merged-table
        # behaviour except that an entry a sender stopped reporting
        # expires with that sender's next beacon rather than lingering
        # until ``stale_s`` (such entries had already decayed to ~0).
        self._reports = {}
        # This node's outgoing quality p(self -> peer) as last reported
        # by each peer, for beacon construction.
        self._outgoing = {}

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------

    def on_beacon(self, beacon, now):
        """Digest one received beacon: count it and keep its reports."""
        sender = beacon.sender
        heard = self._heard_this_second
        heard[sender] = heard.get(sender, 0) + 1
        self._last_heard[sender] = now
        self._reports[sender] = (now, beacon.incoming, beacon.learned)
        # Reports about this node itself are kept too: the sender's
        # ``incoming[self]`` is p(self -> sender), i.e. this node's own
        # *outgoing* quality, which it cannot measure first-hand and
        # which the relay computation needs (p(Bx -> dst)).
        mine = beacon.incoming.get(self.node_id)
        if mine is not None:
            self._outgoing[sender] = (mine, now)

    def tick_second(self, now):
        """Fold the elapsed second into the exponential averages.

        Every known peer contributes a sample: its beacon reception
        ratio this second, zero if silent.  Peers whose average decays
        below ``forget_below`` are forgotten.
        """
        peers = set(self._incoming) | set(self._heard_this_second)
        for peer in peers:
            ratio = min(
                self._heard_this_second.get(peer, 0)
                / self.beacons_per_second,
                1.0,
            )
            previous = self._incoming.get(peer, 0.0)
            self._incoming[peer] = (
                self.alpha * ratio + (1 - self.alpha) * previous
            )
        self._heard_this_second = {}
        for peer in [p for p, v in self._incoming.items()
                     if v < self.forget_below]:
            del self._incoming[peer]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def incoming_probability(self, peer):
        """First-hand estimate of ``p(peer -> self)``."""
        return self._incoming.get(peer, 0.0)

    def incoming_estimates(self):
        """Snapshot of all first-hand incoming estimates."""
        return dict(self._incoming)

    def heard_recently(self, peer, now, within_s):
        """Was a beacon from *peer* heard within the last *within_s*?"""
        last = self._last_heard.get(peer)
        return last is not None and (now - last) <= within_s

    def peers_heard_within(self, now, within_s):
        """All peers whose beacons were heard within *within_s*."""
        return [
            peer for peer, last in self._last_heard.items()
            if (now - last) <= within_s
        ]

    def probability(self, a, b, now):
        """Best known estimate of ``p(a -> b)``; 0 when unknown/stale.

        First-hand knowledge (``b`` is this node) wins; otherwise the
        dissemination table is consulted, subject to freshness.
        """
        if a == b:
            return 1.0
        if b == self.node_id:
            return self._incoming.get(a, 0.0)
        stale_s = self.stale_s
        reports = self._reports
        best = 0.0
        best_ts = None
        from_b = reports.get(b)
        if from_b is not None and now - from_b[0] <= stale_s:
            prob = from_b[1].get(a)
            if prob is not None:
                best = prob
                best_ts = from_b[0]
        from_a = reports.get(a)
        if from_a is not None and now - from_a[0] <= stale_s:
            prob = from_a[2].get(b)
            if prob is not None and (best_ts is None or from_a[0] > best_ts):
                best = prob
        return best

    def probability_lookup(self, now):
        """A ``(a, b) -> p`` callable bound to the current time."""
        def lookup(a, b):
            return self.probability(a, b, now)
        return lookup

    # ------------------------------------------------------------------
    # Beacon payload construction
    # ------------------------------------------------------------------

    def beacon_reports(self, now):
        """Build the (incoming, learned) maps to embed in a beacon.

        ``incoming`` carries this node's first-hand estimates
        ``p(peer -> self)``; ``learned`` carries its second-hand
        knowledge of its own outgoing quality ``p(self -> peer)``.
        """
        incoming = dict(self._incoming)
        stale_s = self.stale_s
        learned = {
            b: prob
            for b, (prob, ts) in self._outgoing.items()
            if now - ts <= stale_s
        }
        return incoming, learned
