"""Reception-probability estimation and dissemination (Section 4.6).

"A ViFi node estimates the reception probability from another node to
itself using the number of beacons received in a given time interval
divided by the number that must have been sent.  Incoming reception
probabilities are maintained as exponential averages (alpha = 0.5) over
per-second beacon reception ratio.  In their beacons, nodes embed the
current incoming reception probability from all nodes that they heard
from in the last interval.  They also embed the packet reception
probability from them to other nodes, which they learn from the beacons
of those other nodes."

So a single beacon from node X teaches a listener both ``p(* -> X)``
(X's first-hand incoming estimates) and ``p(X -> *)`` (X's second-hand
knowledge of its outgoing quality).  An auxiliary therefore learns every
probability the relay computation needs purely by listening, with no
extra coordination traffic.

**Fast path.**  Beacon ingest is batched per beacon round: a received
beacon is appended to a pending list (one list append on the per-frame
path) and folded into the estimator's tables the next time any query
runs — queries are an order of magnitude rarer than receptions, and the
fold runs with locals bound once per batch.  All read paths flush
first, so observable state is identical to eager ingest.  On top of
that, two caches amortize the per-beacon and per-relay-decision costs:

* :meth:`beacon_reports` — the embedded ``incoming`` map only changes
  at :meth:`tick_second` and the ``learned`` map only when a peer
  reports fresh outgoing knowledge or an entry crosses the staleness
  horizon, so both are cached with exact invalidation bounds instead
  of being rebuilt for every one of the ~10 beacons a node sends per
  second.
* :meth:`relay_table` — relay decisions for the same ``(aux set, src,
  dst)`` between state changes reuse one array-indexed
  :class:`~repro.core.relaying.RelayTable` (per-aux contention and
  delivery columns plus the precomputed Eq. 1 denominator), built with
  the same arithmetic, in the same accumulation order, as the scalar
  strategy loops — cached values are bit-for-bit what the uncached
  computation would produce, with validity bounded by the estimator's
  version counter and the earliest staleness expiry consulted.
"""

import math

from repro.core.relaying import RelayTable

__all__ = ["ReceptionEstimator"]


class ReceptionEstimator:
    """Per-node estimator and dissemination table for ``p(a -> b)``.

    Args:
        node_id: owning node.
        beacons_per_second: nominal beacon rate of every node (the
            "number that must have been sent" per second).
        alpha: exponential averaging factor (paper: 0.5).
        stale_s: age after which a table entry is distrusted.
        forget_below: incoming averages below this are dropped, so BSes
            left behind stop being considered.
    """

    #: Relay-table cache entries kept before the cache is reset (aux
    #: sets churn as the vehicle moves; old keys never come back).
    _RELAY_CACHE_MAX = 64

    def __init__(self, node_id, beacons_per_second=10, alpha=0.5,
                 stale_s=5.0, forget_below=0.01):
        self.node_id = node_id
        self.beacons_per_second = int(beacons_per_second)
        self.alpha = float(alpha)
        self.stale_s = float(stale_s)
        self.forget_below = float(forget_below)
        self._heard_this_second = {}
        self._incoming = {}
        self._last_heard = {}
        # Dissemination state is the latest report maps of each sender,
        # stored by reference: ``sender -> (arrived_at, incoming,
        # learned)``.  Ingesting a beacon is then O(1) instead of
        # merging every embedded entry into a tuple-keyed table (the
        # old scheme burned ~6% of a protocol run hashing pair keys),
        # and memory stays bounded by the node count.  Queries combine
        # the two possible sources for ``p(a -> b)`` — b's first-hand
        # ``incoming[a]`` and a's second-hand ``learned[b]`` — newest
        # fresh report winning, which matches the merged-table
        # behaviour except that an entry a sender stopped reporting
        # expires with that sender's next beacon rather than lingering
        # until ``stale_s`` (such entries had already decayed to ~0).
        self._reports = {}
        # This node's outgoing quality p(self -> peer) as last reported
        # by each peer, for beacon construction.
        self._outgoing = {}
        # Beacons received but not yet folded in (see module docstring).
        self._pending = []
        # Change epochs for exact cache invalidation: one per report
        # sender (bumped when that sender's report is replaced) and one
        # for the first-hand averages (bumped per second tick).  The
        # relay-table cache validates against exactly the epochs of the
        # participants it consulted, so unrelated beacon traffic does
        # not evict it.
        self._report_epoch = {}
        self._incoming_epoch = 0
        self._incoming_snapshot = None
        # Incrementally maintained beacon ``learned`` map: flush keeps
        # it current; a full rebuild only runs when the earliest
        # staleness expiry passes (see beacon_reports).  Once handed to
        # a beacon the map is *shared* — receivers keep it by
        # reference — so the next mutation copies first (copy-on-write)
        # and sent beacons stay frozen.
        self._learned_live = {}
        self._learned_shared = False
        self._learned_expiry = math.inf
        self._relay_tables = {}

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------

    def on_beacon(self, beacon, now):
        """Record one received beacon; folded in at the next query."""
        self._pending.append((beacon, now))

    def _flush(self):
        """Fold the pending beacon batch into the tables, in order."""
        pending = self._pending
        if not pending:
            return
        self._pending = []
        heard = self._heard_this_second
        last_heard = self._last_heard
        reports = self._reports
        report_epoch = self._report_epoch
        outgoing = self._outgoing
        learned_live = self._learned_live
        node_id = self.node_id
        stale_s = self.stale_s
        learned_expiry = self._learned_expiry
        for beacon, now in pending:
            sender = beacon.sender
            try:
                heard[sender] += 1
            except KeyError:
                heard[sender] = 1
            last_heard[sender] = now
            incoming = beacon.incoming
            reports[sender] = (now, incoming, beacon.learned)
            try:
                report_epoch[sender] += 1
            except KeyError:
                report_epoch[sender] = 1
            # Reports about this node itself are kept too: the sender's
            # ``incoming[self]`` is p(self -> sender), i.e. this node's
            # own *outgoing* quality, which it cannot measure
            # first-hand and which the relay computation needs
            # (p(Bx -> dst)).
            mine = incoming.get(node_id)
            if mine is not None:
                outgoing[sender] = (mine, now)
                if self._learned_shared:
                    learned_live = self._learned_live = dict(learned_live)
                    self._learned_shared = False
                learned_live[sender] = mine
                expires = now + stale_s
                if expires < learned_expiry:
                    learned_expiry = expires
        self._learned_expiry = learned_expiry

    def tick_second(self, now):
        """Fold the elapsed second into the exponential averages.

        Every known peer contributes a sample: its beacon reception
        ratio this second, zero if silent.  Peers whose average decays
        below ``forget_below`` are forgotten.
        """
        if self._pending:
            self._flush()
        peers = set(self._incoming) | set(self._heard_this_second)
        for peer in peers:
            ratio = min(
                self._heard_this_second.get(peer, 0)
                / self.beacons_per_second,
                1.0,
            )
            previous = self._incoming.get(peer, 0.0)
            self._incoming[peer] = (
                self.alpha * ratio + (1 - self.alpha) * previous
            )
        self._heard_this_second = {}
        for peer in [p for p, v in self._incoming.items()
                     if v < self.forget_below]:
            del self._incoming[peer]
        self._incoming_snapshot = None
        self._incoming_epoch += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def incoming_probability(self, peer):
        """First-hand estimate of ``p(peer -> self)``."""
        return self._incoming.get(peer, 0.0)

    def incoming_estimates(self):
        """Snapshot of all first-hand incoming estimates."""
        return dict(self._incoming)

    def heard_recently(self, peer, now, within_s):
        """Was a beacon from *peer* heard within the last *within_s*?"""
        if self._pending:
            self._flush()
        last = self._last_heard.get(peer)
        return last is not None and (now - last) <= within_s

    def peers_heard_within(self, now, within_s):
        """All peers whose beacons were heard within *within_s*."""
        if self._pending:
            self._flush()
        return [
            peer for peer, last in self._last_heard.items()
            if (now - last) <= within_s
        ]

    def probability(self, a, b, now):
        """Best known estimate of ``p(a -> b)``; 0 when unknown/stale.

        First-hand knowledge (``b`` is this node) wins; otherwise the
        dissemination table is consulted, subject to freshness.
        """
        if self._pending:
            self._flush()
        if a == b:
            return 1.0
        if b == self.node_id:
            return self._incoming.get(a, 0.0)
        stale_s = self.stale_s
        reports = self._reports
        best = 0.0
        best_ts = None
        from_b = reports.get(b)
        if from_b is not None and now - from_b[0] <= stale_s:
            prob = from_b[1].get(a)
            if prob is not None:
                best = prob
                best_ts = from_b[0]
        from_a = reports.get(a)
        if from_a is not None and now - from_a[0] <= stale_s:
            prob = from_a[2].get(b)
            if prob is not None and (best_ts is None or from_a[0] > best_ts):
                best = prob
        return best

    def _probability_ts(self, a, b, now):
        """``(probability, change_bound)`` for the relay-table cache.

        Same value as :meth:`probability` (the caller has flushed);
        ``change_bound`` is the earliest future instant at which this
        answer could change *without* a version bump — the staleness
        expiry of any accepted report.  A report that is already stale
        stays stale (time is monotone), and absent/first-hand entries
        only change with the version, so their bound is infinite.
        """
        if a == b:
            return 1.0, math.inf
        if b == self.node_id:
            return self._incoming.get(a, 0.0), math.inf
        stale_s = self.stale_s
        reports = self._reports
        best = 0.0
        best_ts = None
        bound = math.inf
        from_b = reports.get(b)
        if from_b is not None and now - from_b[0] <= stale_s:
            expires = from_b[0] + stale_s
            if expires < bound:
                bound = expires
            prob = from_b[1].get(a)
            if prob is not None:
                best = prob
                best_ts = from_b[0]
        from_a = reports.get(a)
        if from_a is not None and now - from_a[0] <= stale_s:
            expires = from_a[0] + stale_s
            if expires < bound:
                bound = expires
            prob = from_a[2].get(b)
            if prob is not None and (best_ts is None or from_a[0] > best_ts):
                best = prob
        return best, bound

    def relay_table(self, aux_ids, src, dst, now):
        """Cached :class:`~repro.core.relaying.RelayTable` for a decision.

        Every probability the table holds depends only on the reports
        of the participants (``src``, ``dst`` and the auxiliaries),
        the first-hand averages, and staleness at *now*; the cache
        entry therefore stores those participants' report epochs plus
        the earliest staleness expiry consulted, and stays valid —
        bit-for-bit what a fresh build would produce — until one of
        them changes.  Unrelated beacon traffic never evicts it.
        """
        if self._pending:
            self._flush()
        key = (aux_ids, src, dst)
        cached = self._relay_tables.get(key)
        if cached is not None and now <= cached[1] \
                and cached[3] == self._incoming_epoch:
            report_epoch = self._report_epoch
            for participant, epoch in cached[0]:
                if report_epoch.get(participant, 0) != epoch:
                    break
            else:
                return cached[2]
        if len(self._relay_tables) > self._RELAY_CACHE_MAX:
            self._relay_tables.clear()
        bound = math.inf

        def lookup(a, b):
            nonlocal bound
            value, expires = self._probability_ts(a, b, now)
            if expires < bound:
                bound = expires
            return value

        table = RelayTable(aux_ids, src, dst, lookup)
        report_epoch = self._report_epoch
        participants = tuple(
            (participant, report_epoch.get(participant, 0))
            for participant in (src, dst) + aux_ids
        )
        self._relay_tables[key] = (participants, bound, table,
                                   self._incoming_epoch)
        return table

    def probability_lookup(self, now):
        """A ``(a, b) -> p`` callable bound to the current time."""
        def lookup(a, b):
            return self.probability(a, b, now)
        return lookup

    # ------------------------------------------------------------------
    # Beacon payload construction
    # ------------------------------------------------------------------

    def beacon_reports(self, now):
        """Build the (incoming, learned) maps to embed in a beacon.

        ``incoming`` carries this node's first-hand estimates
        ``p(peer -> self)``; ``learned`` carries its second-hand
        knowledge of its own outgoing quality ``p(self -> peer)``.

        Both maps are cached between state changes (see the module
        docstring); successive beacons within one estimator epoch share
        the same dict objects, whose contents equal a fresh rebuild.
        Callers treat the maps as immutable.
        """
        if self._pending:
            self._flush()
        incoming = self._incoming_snapshot
        if incoming is None:
            incoming = self._incoming_snapshot = dict(self._incoming)
        if now > self._learned_expiry:
            # The earliest staleness expiry passed: prune by rebuilding
            # from the timestamps.  (Expiry is a lower bound — an entry
            # refreshed since may extend it — so rebuilds can only run
            # early, never late: the live map never serves stale rows.)
            stale_s = self.stale_s
            expiry = math.inf
            learned = {}
            for peer, (prob, ts) in self._outgoing.items():
                if now - ts <= stale_s:
                    learned[peer] = prob
                    expires = ts + stale_s
                    if expires < expiry:
                        expiry = expires
            self._learned_live = learned
            self._learned_expiry = expiry
        self._learned_shared = True
        return incoming, self._learned_live
