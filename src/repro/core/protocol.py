"""Experiment wiring: configuration, context, gateway, and simulation.

:class:`ViFiSimulation` assembles a complete packet-level experiment:
the shared wireless medium (with per-link loss processes supplied by a
testbed or a beacon trace), the inter-BS backplane, one vehicle, the
basestations, and an Internet gateway that routes downstream traffic to
the vehicle's current anchor.

The same machinery runs all protocol variants:

* **ViFi** — the default configuration;
* **BRR** — the paper's hard-handoff comparator, "implemented within
  the same framework as ViFi but with the auxiliary BS functionality
  switched off" (``relay_enabled=False, salvage_enabled=False``);
* **diversity-only ViFi** — salvaging disabled (the middle bar of
  Figure 9a);
* the **ablation formulations** of Section 5.5.1 via
  ``relay_strategy``.
"""

import itertools
from dataclasses import dataclass, field

from repro.core.node import BasestationNode, BeaconSlotter, VehicleNode
from repro.core.probabilities import EstimatorBank, ReceptionEstimator
from repro.core.relaying import make_strategy
from repro.core.retransmit import AdaptiveRetxTimer
from repro.core.stats import ViFiStats
from repro.net.backplane import Backplane
from repro.net.medium import WirelessMedium
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry

__all__ = ["InternetGateway", "ViFiConfig", "ViFiSimulation"]


@dataclass
class ViFiConfig:
    """All protocol and environment knobs in one place.

    The defaults correspond to the paper's deployed configuration where
    stated (beacon rate, averaging factor, salvage threshold, 99th
    percentile retransmission timer) and to sensible engineering
    choices elsewhere.
    """

    # Beaconing and estimation (Section 4.6).
    beacon_interval: float = 0.1
    prob_alpha: float = 0.5
    prob_stale_s: float = 5.0
    # Estimator backend: "array" runs the simulation-wide
    # struct-of-arrays EstimatorBank (one per-second heap event folds
    # every node's averages in one vectorized pass; period-aligned
    # first fold; per-peer state pruned at the staleness horizon);
    # "dict" keeps the historical per-node estimator verbatim —
    # including its first-tick bias and unpruned peer state — for the
    # digest-anchored equivalence suite.
    estimator: str = "array"
    # Slot-aligned beacon batching: all beacons nominally due within
    # one slot are emitted by a single heap event at the slot boundary
    # (nominal rates are preserved; emissions shift by at most one
    # slot).  0 restores one timer event per node per beacon.  Under
    # the defer-cascade CSMA model wider slots synchronized co-slotted
    # senders and cost deferred-attempt events (5 ms was the sweet
    # spot); the backoff-freezing model serializes a slot's batch in
    # one event per frame, so the default slot widened to 20 ms (see
    # PERFORMANCE.md for the measurements).
    beacon_slot_s: float = 0.02

    # Medium fast-path knobs (see repro.net.medium): per-receiver loss
    # outcomes drawn from one batched block, and single-event merged
    # transmissions when the medium is uncontended.  0 / False restore
    # the legacy paths.
    medium_outcome_batch: int = 256
    medium_merge_uncontended: bool = True

    # Resolve kernel: "array" runs the struct-of-arrays vectorized
    # kernel (bitwise-identical outcomes); "scalar" keeps the PR 2
    # per-row loop for the equivalence suite.
    medium_kernel: str = "array"

    # CSMA contention model: "freeze" keeps each contender's remaining
    # backoff across busy periods (no defer events; one heap event per
    # broadcast frame); "defer" redraws and reschedules on every busy
    # period (the PR 2 cascade, kept bitwise for the equivalence
    # suite).  The defer model pairs with the narrow 5 ms beacon slot.
    medium_csma: str = "freeze"

    # Slot-batch resolve: hand each beacon slot's emissions to the
    # medium as one batch — when the medium is idle and every emitter
    # is free, the whole slot costs a single heap event and one
    # stacked numpy outcome pass (receivers then observe the batch at
    # its last frame's end, at most one slot late — the bound beacon
    # slotting already accepts on the emission side).  False restores
    # per-frame sends bitwise.
    medium_slot_batch: bool = True

    # Interval-level outcome pre-draw: at a transmitter's first
    # resolve inside a beacon interval the medium commits every
    # receiver row's loss thresholds for the rest of the interval
    # (bucket-centre banks make them pure functions of link and time
    # bucket) and pre-draws the interval's uniforms in one RNG call;
    # later resolves in the interval are a bucket lookup plus a
    # pre-sliced vector compare.  Intervals a loss process cannot
    # commit to (pending burst flip, trace-second edge, callable
    # steering target) fall back per frame for that interval only.
    # False keeps the PR 5 per-frame refresh/draw order verbatim
    # (digest-anchored); True changes the realization (same per-link
    # marginals, fresh uniforms per interval) the way the batched-
    # outcome and bucket-centre knobs did in earlier PRs.
    medium_interval_predraw: bool = True

    # Anchor / auxiliary designation (Section 4.3).
    anchor_hysteresis: float = 0.15
    min_anchor_quality: float = 0.05
    aux_recent_s: float = 2.0
    anchor_belief_timeout: float = 3.0

    # Relaying (Sections 4.3-4.4).  The ack-wait window is adaptive:
    # observed data-to-ack gaps at each BS form a mixture of direct
    # acks (milliseconds) and acks to later retransmissions (tens of
    # milliseconds; waiting cannot recover those, the direct ack was
    # lost).  The window therefore tracks the *median* gap times a
    # safety multiplier, clamped to [relay_min_age, relay_max_window].
    relay_enabled: bool = True
    relay_strategy: str = "vifi"
    relay_min_age: float = 0.008
    relay_initial_window: float = 0.012
    relay_window_percentile: float = 50.0
    relay_window_multiplier: float = 2.0
    relay_max_window: float = 0.05
    relay_max_age: float = 0.25
    relay_timer_interval: float = 0.010

    # Source behaviour (Section 4.7).
    max_retx: int = 3
    retx_initial: float = 0.08
    retx_floor: float = 0.012
    retx_percentile: float = 99.0
    retx_window: int = 500

    # Section 5.1 ablation: send data frames 802.11-unicast style
    # (MAC retries + exponential backoff) instead of the broadcast
    # transmissions ViFi's framework uses.  The paper reports BRR
    # performs worse this way ("the length of disruption-free calls
    # were 25% shorter") because backoff responds to losses that are
    # not collisions.
    unicast_data: bool = False

    # Salvaging (Section 4.5).
    salvage_enabled: bool = True
    salvage_age_s: float = 1.0

    # Media.
    bitrate_bps: float = 1_000_000.0
    backplane_bandwidth_bps: float = 1_000_000.0
    backplane_latency_s: float = 0.01
    wired_latency_s: float = 0.01
    gateway_update_delay_s: float = 0.15

    def brr_variant(self):
        """The paper's BRR comparator: auxiliary functionality off."""
        return self.replace(relay_enabled=False, salvage_enabled=False)

    def brr_unicast_variant(self):
        """BRR over standard 802.11 unicast (the Section 5.1 aside)."""
        return self.replace(relay_enabled=False, salvage_enabled=False,
                            unicast_data=True)

    def diversity_only_variant(self):
        """ViFi with salvaging disabled (Figure 9a, middle bar)."""
        return self.replace(salvage_enabled=False)

    def replace(self, **overrides):
        """A copy of this config with the given fields replaced."""
        values = dict(self.__dict__)
        values.update(overrides)
        return ViFiConfig(**values)

    @property
    def beacons_per_second(self):
        return int(round(1.0 / self.beacon_interval))


class InternetGateway:
    """The wired side: routes downstream packets to the current anchor.

    The gateway's belief about the anchor lags reality by
    ``gateway_update_delay_s`` (routing convergence); packets sent while
    no anchor is known are buffered and flushed on the first update.
    Upstream packets forwarded by the anchor arrive at the gateway
    after the wired latency.
    """

    def __init__(self, ctx):
        self.ctx = ctx
        self.anchor_belief = None
        self._waiting = []
        self.upstream_sink = None
        self.delivered_upstream = []

    def on_anchor_change(self, new_anchor):
        delay = self.ctx.config.gateway_update_delay_s
        # Gateway events never cancel; the fire-and-forget variant
        # skips a handle allocation per routing update / packet.
        self.ctx.sim.schedule_fire(delay, self._update_belief, new_anchor)

    def _update_belief(self, new_anchor):
        self.anchor_belief = new_anchor
        if self._waiting:
            waiting, self._waiting = self._waiting, []
            for args in waiting:
                self.send_downstream(*args)

    def send_downstream(self, payload, size_bytes, flow_id=0, seq=0):
        """Inject one downstream packet from the Internet."""
        if self.anchor_belief is None:
            self._waiting.append((payload, size_bytes, flow_id, seq))
            return
        bs_node = self.ctx.bs_node(self.anchor_belief)
        if bs_node is None:
            return
        self.ctx.sim.schedule_fire(
            self.ctx.config.wired_latency_s,
            bs_node.on_internet_packet, payload, size_bytes, flow_id, seq,
        )

    def deliver_upstream(self, packet):
        """Anchor-forwarded upstream packet reaches the wired host."""
        def arrive():
            self.delivered_upstream.append(
                (packet.seq, packet.created_at, self.ctx.sim.now)
            )
            if self.upstream_sink is not None:
                self.upstream_sink(packet, self.ctx.sim.now)
        self.ctx.sim.schedule_fire(self.ctx.config.wired_latency_s, arrive)


class _Context:
    """Shared wiring handed to every node."""

    def __init__(self, sim, medium, backplane, config, stats, rngs, bs_ids,
                 vehicle_id):
        self.sim = sim
        self.medium = medium
        self.backplane = backplane
        self.config = config
        self.stats = stats
        self.rngs = rngs
        self.bs_ids = tuple(bs_ids)
        self.vehicle_id = vehicle_id
        self.relay_strategy = make_strategy(config.relay_strategy)
        self._tx_ids = itertools.count(1)
        self._nodes = {}
        self.gateway = None
        self.beacon_slotter = None
        if config.estimator not in ("array", "dict"):
            raise ValueError(
                f"unknown estimator mode {config.estimator!r}"
            )
        # One bank serves every node in array mode; its row universe is
        # the full participant set, known here up front.
        self.estimator_bank = None
        if config.estimator == "array":
            self.estimator_bank = EstimatorBank(
                (vehicle_id,) + self.bs_ids,
                beacons_per_second=config.beacons_per_second,
                alpha=config.prob_alpha,
                stale_s=config.prob_stale_s,
                sim=sim,
            )

    def register(self, node):
        self._nodes[node.node_id] = node

    def bs_node(self, bs_id):
        return self._nodes.get(bs_id)

    def next_tx_id(self):
        return next(self._tx_ids)

    def make_estimator(self, node_id):
        if self.estimator_bank is not None:
            return self.estimator_bank.view(node_id)
        return ReceptionEstimator(
            node_id,
            beacons_per_second=self.config.beacons_per_second,
            alpha=self.config.prob_alpha,
            stale_s=self.config.prob_stale_s,
        )

    def make_retx_timer(self):
        return AdaptiveRetxTimer(
            initial_s=self.config.retx_initial,
            floor_s=self.config.retx_floor,
            percentile=self.config.retx_percentile,
            window=self.config.retx_window,
        )

    def make_relay_window_timer(self):
        """The adaptive ack-wait window used by auxiliary BSes."""
        return AdaptiveRetxTimer(
            initial_s=self.config.relay_initial_window,
            floor_s=self.config.relay_min_age,
            percentile=self.config.relay_window_percentile,
            window=200,
        )

    def on_anchor_change(self, new_anchor):
        if self.gateway is not None:
            self.gateway.on_anchor_change(new_anchor)

    def on_bs_became_anchor(self, bs_id):
        """Hook kept for observers; no protocol action needed."""

    def gateway_deliver_upstream(self, packet):
        if self.gateway is not None:
            self.gateway.deliver_upstream(packet)


class ViFiSimulation:
    """A complete packet-level protocol run.

    Args:
        bs_ids: the participating basestations.
        link_table: per-link loss processes (from a testbed model or
            :func:`repro.testbeds.lossmap.build_link_table_from_log`).
        config: a :class:`ViFiConfig`; defaults to stock ViFi.
        seed: seed for protocol-level randomness (backoff, relay coins,
            beacon phases) — independent of the channel randomness
            baked into *link_table*.
        vehicle_id: the vehicle's node id.
        faults: an optional :class:`~repro.sim.faults.FaultSchedule`
            of infrastructure faults (BS radio outages, backplane
            partitions/latency spikes, beacon bursts, vehicle radio
            resets) to inject into the run.  Faults draw only from
            their own RNG namespace and inject only flag flips, so
            ``faults=None`` (the default) is bitwise-identical to a
            build without the fault plane.

    Typical use::

        vifi = ViFiSimulation(bs_ids, table, config=ViFiConfig(), seed=1)
        vifi.start()
        vifi.send_upstream("hello", 500)
        vifi.run(until=60.0)
    """

    def __init__(self, bs_ids, link_table, config=None, seed=0,
                 vehicle_id=0, faults=None):
        self.config = config or ViFiConfig()
        self.sim = Simulator()
        self.rngs = RngRegistry(seed).spawn("protocol")
        self.stats = ViFiStats()
        self.medium = WirelessMedium(
            self.sim, link_table, self.rngs.stream("medium"),
            bitrate_bps=self.config.bitrate_bps,
            outcome_rng=self.rngs.stream("medium-outcomes"),
            outcome_batch=self.config.medium_outcome_batch,
            merge_uncontended=self.config.medium_merge_uncontended,
            kernel=self.config.medium_kernel,
            csma=self.config.medium_csma,
            slot_batch=self.config.medium_slot_batch,
            interval_predraw=self.config.medium_interval_predraw,
            predraw_interval_s=self.config.beacon_interval,
        )
        self.backplane = Backplane(
            self.sim,
            bandwidth_bps=self.config.backplane_bandwidth_bps,
            latency_s=self.config.backplane_latency_s,
        )
        self.ctx = _Context(
            sim=self.sim,
            medium=self.medium,
            backplane=self.backplane,
            config=self.config,
            stats=self.stats,
            rngs=self.rngs,
            bs_ids=bs_ids,
            vehicle_id=vehicle_id,
        )
        if not self.config.relay_enabled:
            # Hard-handoff comparator: auxiliaries never relay.  The
            # cleanest switch-off point is a strategy that always says
            # "do not relay"; designations and beacons stay identical.
            class _NeverRelay:
                name = "never"
                uses_table = False

                def relay_probability(self, ctx):
                    return 0.0

            self.ctx.relay_strategy = _NeverRelay()

        if self.config.beacon_slot_s > 0.0:
            # Without slot batching the slotter keeps the historical
            # per-node emission path verbatim (no medium hand-off), so
            # legacy-knob runs stay bitwise.
            self.ctx.beacon_slotter = BeaconSlotter(
                self.sim, self.config.beacon_slot_s,
                medium=self.medium
                if self.config.medium_slot_batch else None,
            )
        self.vehicle = VehicleNode(vehicle_id, self.ctx)
        self.ctx.register(self.vehicle)
        self.medium.attach(self.vehicle)
        self.bs_nodes = {}
        for bs in bs_ids:
            node = BasestationNode(bs, self.ctx)
            self.ctx.register(node)
            self.medium.attach(node)
            self.backplane.connect(bs)
            self.bs_nodes[bs] = node
        self.gateway = InternetGateway(self.ctx)
        self.ctx.gateway = self.gateway
        self.fault_plane = (
            faults.install(self) if faults is not None else None
        )
        self._started = False

    # -- lifecycle -----------------------------------------------------------

    def start(self):
        """Arm all node timers.  Idempotent."""
        if self._started:
            return
        self.vehicle.start()
        for node in self.bs_nodes.values():
            node.start()
        self._started = True

    def run(self, until):
        """Advance the simulation to absolute time *until* (seconds)."""
        self.start()
        self.sim.run(until=until)

    # -- application API -------------------------------------------------------

    def send_upstream(self, payload, size_bytes, flow_id=0, seq=0):
        """Vehicle-originated packet toward the Internet."""
        return self.vehicle.send_upstream(payload, size_bytes,
                                          flow_id=flow_id, seq=seq)

    def send_downstream(self, payload, size_bytes, flow_id=0, seq=0):
        """Internet-originated packet toward the vehicle."""
        return self.gateway.send_downstream(payload, size_bytes,
                                            flow_id=flow_id, seq=seq)

    def set_downstream_sink(self, callback):
        """``callback(packet, delivered_at)`` on vehicle app delivery."""
        self.vehicle.downstream_sink = callback

    def set_upstream_sink(self, callback):
        """``callback(packet, delivered_at)`` on wired-side delivery."""
        self.gateway.upstream_sink = callback

    # -- accounting ------------------------------------------------------------

    def wireless_data_tx(self, direction):
        """Data transmissions on the vehicle-BS channel per direction."""
        from repro.net.packet import Direction
        if direction is Direction.UPSTREAM:
            return self.medium.transmissions(
                kind="data", node_id=self.ctx.vehicle_id
            )
        total = 0
        for bs in self.bs_nodes:
            total += self.medium.transmissions(kind="data", node_id=bs)
        return total

    def efficiency(self, direction):
        """Figure 12's metric: packets delivered per data transmission."""
        return self.stats.efficiency(
            direction, self.wireless_data_tx(direction)
        )
