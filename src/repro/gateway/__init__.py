"""Fault-tolerant HTTP transport for the experiment service.

``repro.gateway`` is the wire layer over
:class:`repro.service.ExperimentService`: a stdlib-only asyncio
HTTP/1.1 server engineered for failure first (:mod:`.server`) and a
retrying client built to survive the failures the server hands out
(:mod:`.client`).  ``python -m repro serve --http HOST:PORT`` boots
the server; ``tools/gateway_smoke.py`` is the chaos gate that keeps
both honest.
"""

from repro.gateway.server import Gateway, GatewayLimits, serve_http

__all__ = ["Gateway", "GatewayLimits", "serve_http"]
