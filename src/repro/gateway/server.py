"""Hardened asyncio HTTP/1.1 front end for the experiment service.

The gateway accepts experiment specs over the wire, streams progress,
and serves store-cached sweeps — and it is engineered for the ways
that goes wrong rather than the happy path:

* **A hardened request parser.**  Bounded start-line/header/body
  sizes, per-phase read deadlines (a slow-loris client gets a 408 and
  the socket back, never a parked connection), and structured JSON
  errors for every malformed shape — a client can never extract a
  traceback from garbage bytes.
* **Explicit overload behaviour.**  Connections beyond
  ``max_connections`` are answered ``503`` immediately;
  :class:`~repro.service.ServiceSaturated` maps to ``429`` and a
  closed/draining service to ``503``, both with ``Retry-After`` so a
  well-behaved client backs off instead of hammering.
* **Idempotent submission.**  ``POST /jobs`` dedupes through the
  job's content-addressed :meth:`~repro.service.ExperimentService.job_key`
  — a retry after a lost response attaches to the live job instead of
  recomputing.
* **Cooperative cancellation on disconnect.**  An event-stream
  watcher that asked for ``?cancel=1`` and then vanishes cancels the
  underlying job through ``JobContext.should_stop``; sweep runners
  notice between tasks and stop burning cores for a client that left.
* **Graceful drain.**  SIGTERM/SIGINT flips ``/readyz`` to 503 and
  rejects new jobs while in-flight jobs finish (bounded by
  ``drain_timeout_s``); only then does the listener close and the
  service shut down.  Jobs that outlive the drain window are
  finalized ``cancelled`` by ``ExperimentService.close`` — their
  per-task store entries stay warm for resubmission.

Endpoints::

    POST /jobs                submit {"runner", "params", "deadline_s"}
    GET  /jobs/<id>           status snapshot (+result when done)
    GET  /jobs/<id>/events    SSE progress stream (?cancel=1 ties the
                              job's life to the watcher's connection)
    POST /jobs/<id>/cancel    cooperative cancellation
    GET  /healthz             liveness (always 200 while serving)
    GET  /readyz              readiness (503 once draining)
    GET  /stats               service + gateway counters
"""

import asyncio
import json
import logging
import re
import signal
import time
import urllib.parse

from repro import service as repro_service

__all__ = ["Gateway", "GatewayLimits", "serve_http"]

log = logging.getLogger("repro.gateway")

_REASONS = {
    200: "OK", 201: "Created", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 429: "Too Many Requests",
    431: "Request Header Fields Too Large", 500: "Internal Server Error",
    501: "Not Implemented", 503: "Service Unavailable",
    505: "HTTP Version Not Supported",
}

_JOB_PATH = re.compile(r"^/jobs/(\d+)$")
_JOB_EVENTS_PATH = re.compile(r"^/jobs/(\d+)/events$")
_JOB_CANCEL_PATH = re.compile(r"^/jobs/(\d+)/cancel$")

#: How long one ``Job.progress_since`` wait blocks an executor thread
#: per round; bounds both SSE event latency and disconnect-detection
#: latency.
_SSE_POLL_S = 0.25
#: Idle rounds between SSE keepalive comments.
_SSE_HEARTBEAT_ROUNDS = 4


class GatewayLimits:
    """Resource bounds for one gateway instance.

    Every limit exists to convert a hostile or broken client into a
    bounded, structured failure: oversized payloads into 413, slow
    trickles into 408, header floods into 431, connection floods into
    an immediate 503.
    """

    def __init__(self, max_connections=64, max_start_line_bytes=4096,
                 max_header_bytes=16384, max_header_count=64,
                 max_body_bytes=1 << 20, header_timeout_s=5.0,
                 body_timeout_s=15.0, write_timeout_s=15.0):
        self.max_connections = int(max_connections)
        self.max_start_line_bytes = int(max_start_line_bytes)
        self.max_header_bytes = int(max_header_bytes)
        self.max_header_count = int(max_header_count)
        self.max_body_bytes = int(max_body_bytes)
        self.header_timeout_s = float(header_timeout_s)
        self.body_timeout_s = float(body_timeout_s)
        self.write_timeout_s = float(write_timeout_s)


class _HttpError(Exception):
    """A request that must be answered with a structured error."""

    def __init__(self, status, error, detail=None, retry_after=None,
                 close=True):
        super().__init__(error)
        self.status = int(status)
        self.error = str(error)
        self.detail = detail
        self.retry_after = retry_after
        self.close = close

    def payload(self):
        out = {"error": self.error, "status": self.status}
        if self.detail is not None:
            out["detail"] = str(self.detail)
        return out


class _Request:
    def __init__(self, method, target, headers, body):
        self.method = method
        split = urllib.parse.urlsplit(target)
        self.path = split.path
        self.query = dict(urllib.parse.parse_qsl(split.query))
        self.headers = headers
        self.body = body

    def wants_close(self):
        return self.headers.get("connection", "").lower() == "close"


class Gateway:
    """The asyncio HTTP server wrapped around an ExperimentService."""

    def __init__(self, service, host="127.0.0.1", port=0, limits=None,
                 drain_timeout_s=30.0):
        self.service = service
        self.host = host
        self.port = int(port)
        self.limits = limits or GatewayLimits()
        self.drain_timeout_s = float(drain_timeout_s)
        self._server = None
        self._draining = False
        self._drain_event = asyncio.Event()
        self._conn_tasks = set()
        self._active = 0
        self._streams = 0
        self.counters = {
            "connections_total": 0,
            "connections_rejected": 0,
            "requests_total": 0,
            "bad_requests": 0,
            "disconnect_cancels": 0,
        }

    # -- lifecycle -----------------------------------------------------

    async def start(self):
        """Bind and start accepting; records the bound port."""
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port,
            limit=max(self.limits.max_header_bytes,
                      self.limits.max_start_line_bytes))
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    def begin_drain(self):
        """Flip readiness and start the graceful shutdown sequence."""
        if not self._draining:
            log.info("gateway draining (%d active connections)",
                     self._active)
        self._draining = True
        self._drain_event.set()

    def install_signal_handlers(self, loop=None):
        loop = loop or asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self.begin_drain)
            except (NotImplementedError, RuntimeError):
                signal.signal(
                    sig,
                    lambda *_a: loop.call_soon_threadsafe(self.begin_drain))

    async def run_until_drained(self):
        """Serve until a drain is requested, then shut down cleanly.

        Drain order: readiness already flipped (``begin_drain``), new
        jobs already rejected 503; wait — bounded by
        ``drain_timeout_s`` — for queued/running jobs and live event
        streams to finish; close the listener; give connection
        handlers a short grace to flush; cancel stragglers; close the
        service (which finalizes any job that outlived the window).
        """
        await self._drain_event.wait()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.drain_timeout_s
        while loop.time() < deadline:
            counts = self.service.stats()
            busy = counts[repro_service.QUEUED] + counts[repro_service.RUNNING]
            if busy == 0 and self._streams == 0:
                break
            await asyncio.sleep(0.05)
        self._server.close()
        await self._server.wait_closed()
        grace = loop.time() + 2.0
        while self._active and loop.time() < grace:
            await asyncio.sleep(0.02)
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self.service.close(wait=True)

    # -- connection handling -------------------------------------------

    def _on_connection(self, reader, writer):
        task = asyncio.ensure_future(self._handle_connection(reader, writer))
        self._conn_tasks.add(task)
        task.add_done_callback(self._conn_tasks.discard)

    async def _handle_connection(self, reader, writer):
        self.counters["connections_total"] += 1
        if self._active >= self.limits.max_connections:
            self.counters["connections_rejected"] += 1
            await self._send_simple(
                writer, 503, {"error": "too many connections",
                              "status": 503}, retry_after=1)
            await self._close_writer(writer)
            return
        self._active += 1
        try:
            await self._serve_requests(reader, writer)
        except (ConnectionError, BrokenPipeError, asyncio.TimeoutError):
            pass  # client went away mid-write; nothing to answer
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # repro-lint: allow[SILENT-EXCEPT] a handler bug is logged and answered with a 500; it must not kill the server loop
            log.warning("connection handler error: %r", exc)
            try:
                await self._send_simple(
                    writer, 500, {"error": "internal error", "status": 500})
            except (ConnectionError, BrokenPipeError, asyncio.TimeoutError,
                    OSError):
                pass
        finally:
            self._active -= 1
            await self._close_writer(writer)

    async def _serve_requests(self, reader, writer):
        """Keep-alive loop: parse, route, answer, repeat."""
        while True:
            try:
                request = await self._read_request(reader)
            except _HttpError as exc:
                self.counters["bad_requests"] += 1
                await self._send_simple(writer, exc.status, exc.payload(),
                                        retry_after=exc.retry_after)
                return
            if request is None:
                return  # clean EOF / idle close
            self.counters["requests_total"] += 1
            try:
                keep_alive = await self._route(request, reader, writer)
            except _HttpError as exc:
                await self._send_simple(writer, exc.status, exc.payload(),
                                        retry_after=exc.retry_after,
                                        keep_alive=not exc.close)
                if exc.close:
                    return
                keep_alive = True
            if not keep_alive or request.wants_close() or self._draining:
                return

    # -- parsing -------------------------------------------------------

    async def _read_line(self, reader, deadline, limit, what):
        remaining = deadline - asyncio.get_running_loop().time()
        if remaining <= 0:
            raise _HttpError(408, f"timed out reading {what}")
        try:
            line = await asyncio.wait_for(reader.readuntil(b"\n"), remaining)
        except asyncio.TimeoutError:
            raise _HttpError(408, f"timed out reading {what}") from None
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None  # clean EOF between requests
            raise _HttpError(400, f"connection closed mid-{what}") from None
        except asyncio.LimitOverrunError:
            raise _HttpError(431, f"{what} too long") from None
        if len(line) > limit:
            raise _HttpError(431, f"{what} too long")
        return line.rstrip(b"\r\n")

    async def _read_request(self, reader):
        """Parse one request with deadlines and limits; None on EOF."""
        limits = self.limits
        loop = asyncio.get_running_loop()
        deadline = loop.time() + limits.header_timeout_s

        start = await self._read_line(reader, deadline,
                                      limits.max_start_line_bytes,
                                      "request line")
        if start is None:
            return None
        if not start:  # tolerate one stray CRLF between requests
            start = await self._read_line(reader, deadline,
                                          limits.max_start_line_bytes,
                                          "request line")
            if start is None:
                return None
        try:
            text = start.decode("ascii")
        except UnicodeDecodeError:
            raise _HttpError(400, "request line is not ASCII") from None
        parts = text.split(" ")
        if len(parts) != 3 or not all(parts):
            raise _HttpError(400, "malformed request line",
                             detail=text[:120])
        method, target, version = parts
        if version not in ("HTTP/1.1", "HTTP/1.0"):
            raise _HttpError(505, f"unsupported version {version[:20]!r}")
        if method not in ("GET", "POST", "HEAD"):
            raise _HttpError(405, f"method {method[:20]!r} not allowed")

        headers = {}
        total = 0
        while True:
            line = await self._read_line(reader, deadline,
                                         limits.max_header_bytes, "header")
            if line is None:
                raise _HttpError(400, "connection closed mid-headers")
            if not line:
                break
            total += len(line)
            if total > limits.max_header_bytes:
                raise _HttpError(431, "headers too large")
            if len(headers) >= limits.max_header_count:
                raise _HttpError(431, "too many headers")
            name, sep, value = line.partition(b":")
            if not sep or not name.strip():
                raise _HttpError(400, "malformed header line")
            try:
                headers[name.decode("ascii").strip().lower()] = \
                    value.decode("latin-1").strip()
            except UnicodeDecodeError:
                raise _HttpError(400, "header name is not ASCII") from None

        if "transfer-encoding" in headers:
            raise _HttpError(501, "chunked request bodies not supported")
        body = b""
        raw_length = headers.get("content-length")
        if raw_length is not None:
            if not raw_length.isdigit():
                raise _HttpError(400, "malformed Content-Length",
                                 detail=raw_length[:40])
            length = int(raw_length)
            if length > limits.max_body_bytes:
                raise _HttpError(
                    413, "request body too large",
                    detail=f"{length} > {limits.max_body_bytes} bytes")
            if length:
                try:
                    body = await asyncio.wait_for(
                        reader.readexactly(length), limits.body_timeout_s)
                except asyncio.TimeoutError:
                    raise _HttpError(408, "timed out reading body") \
                        from None
                except asyncio.IncompleteReadError:
                    raise _HttpError(400, "connection closed mid-body") \
                        from None
        return _Request(method, target, headers, body)

    # -- responses -----------------------------------------------------

    def _encode(self, status, payload, extra_headers=(), keep_alive=True,
                retry_after=None):
        body = json.dumps(payload, default=str).encode("utf-8")
        lines = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        if retry_after is not None:
            lines.append(f"Retry-After: {int(retry_after)}")
        lines.extend(extra_headers)
        return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + body

    async def _write(self, writer, raw):
        writer.write(raw)
        await asyncio.wait_for(writer.drain(), self.limits.write_timeout_s)

    async def _send_simple(self, writer, status, payload, retry_after=None,
                           keep_alive=False):
        try:
            await self._write(writer, self._encode(
                status, payload, keep_alive=keep_alive,
                retry_after=retry_after))
        except (ConnectionError, BrokenPipeError, asyncio.TimeoutError,
                OSError):
            pass  # the client is gone; the error was for them anyway

    @staticmethod
    async def _close_writer(writer):
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, BrokenPipeError, OSError):
            pass

    # -- routing -------------------------------------------------------

    async def _route(self, request, reader, writer):
        """Dispatch one request; returns keep-alive."""
        method, path = request.method, request.path
        if path == "/healthz":
            self._require(method, "GET")
            await self._write(writer, self._encode(200, {"ok": True}))
            return True
        if path == "/readyz":
            self._require(method, "GET")
            if self._draining or self.service.closed:
                await self._write(writer, self._encode(
                    503, {"ready": False, "draining": True},
                    keep_alive=False, retry_after=2))
                return False
            await self._write(writer, self._encode(200, {"ready": True}))
            return True
        if path == "/stats":
            self._require(method, "GET")
            stats = self.service.stats()
            stats["gateway"] = dict(self.counters,
                                    active_connections=self._active,
                                    live_event_streams=self._streams,
                                    draining=self._draining)
            await self._write(writer, self._encode(200, stats))
            return True
        if path == "/jobs":
            self._require(method, "POST")
            await self._submit(request, writer)
            return True
        match = _JOB_PATH.match(path)
        if match:
            self._require(method, "GET")
            await self._job_status(int(match.group(1)), writer)
            return True
        match = _JOB_CANCEL_PATH.match(path)
        if match:
            self._require(method, "POST")
            await self._job_cancel(int(match.group(1)), writer)
            return True
        match = _JOB_EVENTS_PATH.match(path)
        if match:
            self._require(method, "GET")
            await self._job_events(int(match.group(1)), request, reader,
                                   writer)
            return False  # streams always close the connection
        raise _HttpError(404, f"no such endpoint {path[:80]!r}", close=False)

    @staticmethod
    def _require(method, expected):
        if method != expected:
            raise _HttpError(405, f"use {expected} for this endpoint",
                             close=False)

    def _job_or_404(self, job_id):
        try:
            return self.service.job(job_id)
        except KeyError:
            raise _HttpError(404, f"no such job {job_id}",
                             close=False) from None

    async def _submit(self, request, writer):
        if self._draining or self.service.closed:
            raise _HttpError(503, "service is draining", retry_after=2,
                             close=False)
        try:
            text = request.body.decode("utf-8")
        except UnicodeDecodeError:
            raise _HttpError(400, "body is not UTF-8", close=False) \
                from None
        try:
            name, params, deadline_s = repro_service.parse_job_request(text)
        except ValueError as exc:
            raise _HttpError(400, "malformed job request", detail=exc,
                             close=False) from None
        try:
            job_id, attached = await asyncio.to_thread(
                self.service.submit_idempotent, name, params,
                deadline_s)
        except KeyError as exc:
            raise _HttpError(400, "unknown runner",
                             detail=str(exc).strip("'\""),
                             close=False) from None
        except repro_service.ServiceSaturated as exc:
            raise _HttpError(429, "service saturated", detail=exc,
                             retry_after=1, close=False) from None
        except repro_service.ServiceClosed as exc:
            raise _HttpError(503, "service closed", detail=exc,
                             retry_after=2, close=False) from None
        snapshot = self.service.status(job_id)
        snapshot["attached"] = attached
        await self._write(writer, self._encode(
            200 if attached else 201, snapshot))

    async def _job_status(self, job_id, writer):
        job = self._job_or_404(job_id)
        out = job.snapshot()
        if job.state == repro_service.DONE:
            out["result"] = job.result
        await self._write(writer, self._encode(200, out))

    async def _job_cancel(self, job_id, writer):
        job = self._job_or_404(job_id)
        cancelled = await asyncio.to_thread(self.service.cancel, job_id)
        await self._write(writer, self._encode(
            200, {"id": job_id, "cancelled": bool(cancelled),
                  "state": job.state}))

    async def _job_events(self, job_id, request, reader, writer):
        """SSE progress stream; drives disconnect-cancel semantics."""
        job = self._job_or_404(job_id)
        cancel_on_disconnect = request.query.get("cancel", "") in (
            "1", "true", "yes")
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: text/event-stream\r\n"
            "Cache-Control: no-cache\r\n"
            "Connection: close\r\n\r\n"
        ).encode("ascii")
        await self._write(writer, head)
        watch = asyncio.ensure_future(reader.read(4096))
        self._streams += 1
        seq = 0
        idle_rounds = 0
        try:
            await self._write(writer, self._sse("snapshot", job.snapshot()))
            while True:
                events, terminal = await asyncio.to_thread(
                    job.progress_since, seq, _SSE_POLL_S)
                for event in events:
                    seq = event["seq"]
                    await self._write(writer, self._sse("progress", event))
                if terminal:
                    final = job.snapshot()
                    if job.state == repro_service.DONE:
                        final["result"] = job.result
                    await self._write(writer, self._sse("done", final))
                    return
                if watch.done():
                    # EOF or stray bytes — either way the watcher is
                    # not a well-behaved SSE consumer anymore.
                    if cancel_on_disconnect and \
                            job.state not in repro_service._TERMINAL:
                        self.counters["disconnect_cancels"] += 1
                        log.info("events watcher for job %d vanished; "
                                 "cancelling", job_id)
                        await asyncio.to_thread(self.service.cancel, job_id)
                    return
                if not events:
                    idle_rounds += 1
                    if idle_rounds >= _SSE_HEARTBEAT_ROUNDS:
                        idle_rounds = 0
                        # Heartbeats flush through the socket, so a
                        # silently-dead peer surfaces as a write error
                        # here instead of parking the stream forever.
                        await self._write(writer, b": keepalive\n\n")
                else:
                    idle_rounds = 0
        except (ConnectionError, BrokenPipeError, asyncio.TimeoutError,
                OSError):
            if cancel_on_disconnect and \
                    job.state not in repro_service._TERMINAL:
                self.counters["disconnect_cancels"] += 1
                log.info("events stream for job %d broke; cancelling",
                         job_id)
                await asyncio.to_thread(self.service.cancel, job_id)
        finally:
            self._streams -= 1
            if not watch.done():
                watch.cancel()

    @staticmethod
    def _sse(event, payload):
        data = json.dumps(payload, default=str)
        return f"event: {event}\ndata: {data}\n\n".encode("utf-8")


def serve_http(service, host="127.0.0.1", port=0, limits=None,
               drain_timeout_s=30.0, announce=print):
    """Run a gateway over *service* until SIGTERM/SIGINT drains it.

    Announces the bound address as ``gateway listening on HOST:PORT``
    (ephemeral ``port=0`` resolves here) so supervisors and the chaos
    smoke can discover the port.  Returns a process exit code.
    """
    async def amain():
        gateway = Gateway(service, host, port, limits=limits,
                          drain_timeout_s=drain_timeout_s)
        await gateway.start()
        gateway.install_signal_handlers()
        if announce is not None:
            announce(f"gateway listening on {gateway.host}:{gateway.port}",
                     flush=True)
        await gateway.run_until_drained()

    try:
        asyncio.run(amain())
    except KeyboardInterrupt:
        # A second SIGINT during drain: exit now, service threads are
        # daemons and the store has already checkpointed finished work.
        log.warning("interrupted during drain; exiting")
        return 130
    finally:
        if not service.closed:
            service.close(wait=False)
    return 0
