"""A retrying HTTP client for the experiment gateway.

:class:`RetryingClient` is the failure-absorbing half of the wire
story: the server restarts, saturates, and drains; this client is
what lets a caller not care.  It is deliberately synchronous (callers
are scripts and smoke harnesses) and stdlib-only:

* **Exponential backoff with full jitter.**  Retry sleeps draw
  uniformly from ``[0, min(cap, base * 2**attempt)]`` so a fleet of
  clients recovering from the same outage does not stampede the
  server in lockstep.
* **``Retry-After`` honoured.**  A 429/503 with a server-suggested
  delay overrides the jittered sleep (capped, so a hostile header
  cannot park the client).
* **Idempotent-safe retry policy.**  Connection failures and 5xx/429
  retry only for requests marked idempotent.  ``POST /jobs`` *is*
  idempotent — the gateway dedupes on the job's content-addressed key
  — which is exactly what makes retry-after-lost-response safe.
* **Per-attempt and overall deadlines.**  Every attempt carries a
  socket timeout; the whole call gives up once ``overall_timeout_s``
  is spent, raising the last underlying error.
* **A small half-open circuit breaker.**  After ``breaker_failures``
  consecutive transport failures the client stops hammering the dead
  server and sleeps out a cooldown; the next attempt is the half-open
  probe — success closes the breaker, failure re-opens it.

A mid-call server ``kill -9`` therefore looks like: ECONNREFUSED →
breaker opens → jittered sleeps → server restarts → probe succeeds →
the resubmitted job attaches (or recomputes warm from the store).
"""

import http.client
import json
import logging
import random
import time

__all__ = ["RetryingClient", "GatewayError", "GatewayUnavailable"]

log = logging.getLogger("repro.gateway.client")

#: Transport-level failures that are retryable for idempotent calls.
_TRANSPORT_ERRORS = (OSError, http.client.HTTPException)

#: Upper bound on a server-supplied Retry-After we will actually obey.
_MAX_RETRY_AFTER_S = 10.0


class GatewayError(RuntimeError):
    """A definitive (non-retryable) HTTP error response."""

    def __init__(self, status, payload):
        super().__init__(f"HTTP {status}: {payload}")
        self.status = status
        self.payload = payload


class GatewayUnavailable(RuntimeError):
    """The overall deadline expired without a definitive response."""


class RetryingClient:
    def __init__(self, host, port, attempt_timeout_s=10.0,
                 overall_timeout_s=60.0, backoff_base_s=0.05,
                 backoff_cap_s=2.0, breaker_failures=4,
                 breaker_reset_s=1.0, rng=None):
        self.host = host
        self.port = int(port)
        self.attempt_timeout_s = float(attempt_timeout_s)
        self.overall_timeout_s = float(overall_timeout_s)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_cap_s = float(backoff_cap_s)
        self.breaker_failures = int(breaker_failures)
        self.breaker_reset_s = float(breaker_reset_s)
        # Transport retry jitter, never simulation randomness — this
        # module is on the RNG-DISCIPLINE allowlist (see
        # repro.lint.rules.RngDisciplineRule.ALLOWLIST).
        self._rng = rng or random.Random()
        self._consecutive_failures = 0
        self._breaker_opened_at = None
        self.stats = {"attempts": 0, "retries": 0, "breaker_trips": 0,
                      "breaker_probes": 0}

    # -- circuit breaker ----------------------------------------------

    @property
    def breaker_state(self):
        if self._breaker_opened_at is None:
            return "closed"
        waited = time.monotonic() - self._breaker_opened_at
        return "half-open" if waited >= self.breaker_reset_s else "open"

    def _breaker_gate(self, deadline):
        """Sleep out an open breaker (bounded by the call deadline)."""
        if self._breaker_opened_at is None:
            return
        reopen_at = self._breaker_opened_at + self.breaker_reset_s
        delay = reopen_at - time.monotonic()
        if delay > 0:
            if time.monotonic() + delay > deadline:
                raise GatewayUnavailable(
                    "circuit breaker open past the overall deadline")
            time.sleep(delay)
        self.stats["breaker_probes"] += 1  # half-open: one probe through

    def _record_failure(self):
        self._consecutive_failures += 1
        if self._consecutive_failures >= self.breaker_failures and \
                self._breaker_opened_at is None:
            self.stats["breaker_trips"] += 1
            log.info("circuit breaker open after %d consecutive failures",
                     self._consecutive_failures)
        if self._consecutive_failures >= self.breaker_failures:
            self._breaker_opened_at = time.monotonic()

    def _record_success(self):
        self._consecutive_failures = 0
        self._breaker_opened_at = None

    # -- core request loop --------------------------------------------

    def _one_attempt(self, method, path, body, timeout):
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=timeout)
        try:
            headers = {"Connection": "close"}
            raw = None
            if body is not None:
                raw = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=raw, headers=headers)
            response = conn.getresponse()
            payload = response.read()
            try:
                decoded = json.loads(payload) if payload else None
            except ValueError:
                decoded = {"raw": payload.decode("utf-8", "replace")}
            return response.status, dict(response.getheaders()), decoded
        finally:
            conn.close()

    def request(self, method, path, body=None, idempotent=True,
                overall_timeout_s=None, retry_busy=True):
        """Issue a request, retrying through transient failure.

        Returns ``(status, headers, payload)`` for any definitive
        response (including 4xx — the caller decides what a 404
        means).  Raises :class:`GatewayUnavailable` when the overall
        deadline is spent without one, with the last failure chained.
        With ``retry_busy=False`` a 429/503 is returned as-is instead
        of being waited out — for probes whose *point* is observing
        overload or drain.
        """
        overall = (self.overall_timeout_s if overall_timeout_s is None
                   else float(overall_timeout_s))
        deadline = time.monotonic() + overall
        attempt = 0
        last_error = None
        while True:
            self._breaker_gate(deadline)
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise GatewayUnavailable(
                    f"{method} {path} exhausted {overall:.1f}s"
                ) from last_error
            attempt += 1
            self.stats["attempts"] += 1
            try:
                status, headers, payload = self._one_attempt(
                    method, path, body,
                    timeout=max(0.05, min(self.attempt_timeout_s,
                                          remaining)))
            except _TRANSPORT_ERRORS as exc:
                self._record_failure()
                last_error = exc
                if not idempotent:
                    raise
                self._backoff(attempt, deadline)
                continue
            if status in (429, 503):
                # Structured overload/drain push-back.  The server is
                # alive and talking, so the breaker stays closed; we
                # honour its Retry-After and fall back to jitter.
                self._record_success()
                if not retry_busy:
                    return status, headers, payload
                last_error = GatewayError(status, payload)
                self._backoff(attempt, deadline,
                              retry_after=_parse_retry_after(headers))
                continue
            if status >= 500 and idempotent:
                self._record_failure()
                last_error = GatewayError(status, payload)
                self._backoff(attempt, deadline)
                continue
            self._record_success()
            return status, headers, payload

    def _backoff(self, attempt, deadline, retry_after=None):
        self.stats["retries"] += 1
        delay = self._rng.uniform(
            0.0, min(self.backoff_cap_s,
                     self.backoff_base_s * (2.0 ** min(attempt, 16))))
        if retry_after is not None:
            delay = max(delay, min(retry_after, _MAX_RETRY_AFTER_S))
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            return  # let the loop head raise GatewayUnavailable
        time.sleep(min(delay, remaining))

    # -- gateway API convenience --------------------------------------

    def _expect(self, expected, status, payload):
        if status not in expected:
            raise GatewayError(status, payload)
        return payload

    def submit(self, runner, params=None, deadline_s=None,
               overall_timeout_s=None):
        """Submit a job; safe to call again after a lost response.

        Returns the job snapshot (``attached`` True when the gateway
        deduped onto an existing job).
        """
        body = {"runner": runner, "params": params or {}}
        if deadline_s is not None:
            body["deadline_s"] = deadline_s
        status, _, payload = self.request(
            "POST", "/jobs", body=body,
            overall_timeout_s=overall_timeout_s)
        return self._expect((200, 201), status, payload)

    def job(self, job_id):
        status, _, payload = self.request("GET", f"/jobs/{job_id}")
        return self._expect((200,), status, payload)

    def cancel(self, job_id):
        status, _, payload = self.request("POST", f"/jobs/{job_id}/cancel")
        return self._expect((200,), status, payload)

    def health(self):
        status, _, payload = self.request("GET", "/healthz")
        return self._expect((200,), status, payload)

    def ready(self):
        """True when the gateway reports ready (False while draining).

        A 503 here is the answer, not a transient to retry through.
        """
        status, _, _ = self.request("GET", "/readyz", retry_busy=False)
        return status == 200

    def server_stats(self):
        status, _, payload = self.request("GET", "/stats")
        return self._expect((200,), status, payload)

    def wait(self, job_id, poll_s=0.2, timeout_s=120.0):
        """Poll until the job is terminal; returns the final snapshot."""
        deadline = time.monotonic() + float(timeout_s)
        while True:
            snapshot = self.job(job_id)
            if snapshot["state"] in ("done", "failed", "cancelled",
                                     "expired"):
                return snapshot
            if time.monotonic() >= deadline:
                raise GatewayUnavailable(
                    f"job {job_id} not terminal after {timeout_s:.1f}s "
                    f"(state {snapshot['state']})")
            time.sleep(poll_s)

    def submit_and_wait(self, runner, params=None, deadline_s=None,
                        poll_s=0.2, timeout_s=120.0):
        """Submit (idempotently re-submitting through outages) + wait.

        The one-call shape a sweep script wants: if the server dies
        between submit and completion, the poll loop's transport
        errors retry internally; if the job itself was lost with the
        server, the next ``submit`` recreates it and the store makes
        the recompute warm.
        """
        deadline = time.monotonic() + float(timeout_s)
        while True:
            snapshot = self.submit(runner, params, deadline_s=deadline_s,
                                   overall_timeout_s=max(
                                       1.0, deadline - time.monotonic()))
            job_id = snapshot["id"]
            try:
                final = self.wait(job_id, poll_s=poll_s,
                                  timeout_s=max(0.5,
                                                deadline - time.monotonic()))
            except GatewayError as exc:
                if exc.status == 404 and time.monotonic() < deadline:
                    # The server restarted and lost the in-memory job
                    # table; resubmit — idempotent by design.
                    log.info("job %s vanished (server restart?); "
                             "resubmitting", job_id)
                    continue
                raise
            if final["state"] in ("done", "failed"):
                return final
            if final["state"] in ("cancelled", "expired") and \
                    time.monotonic() < deadline:
                return final
            if time.monotonic() >= deadline:
                return final

    def stream_events(self, job_id, cancel_on_disconnect=False,
                      read_timeout_s=30.0):
        """Yield SSE events for a job: ``(event_name, payload_dict)``.

        No internal retry — a broken stream raises and the caller
        decides whether to reconnect or fall back to polling.  With
        ``cancel_on_disconnect`` the server cancels the job if this
        consumer goes away before the job finishes.
        """
        path = f"/jobs/{job_id}/events"
        if cancel_on_disconnect:
            path += "?cancel=1"
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=float(read_timeout_s))
        try:
            conn.request("GET", path, headers={"Accept":
                                               "text/event-stream"})
            response = conn.getresponse()
            if response.status != 200:
                raise GatewayError(response.status,
                                   response.read().decode("utf-8",
                                                          "replace"))
            event, data = None, []
            for raw in response:
                line = raw.decode("utf-8", "replace").rstrip("\n\r")
                if line.startswith(":"):
                    continue  # heartbeat
                if line.startswith("event:"):
                    event = line.split(":", 1)[1].strip()
                elif line.startswith("data:"):
                    data.append(line.split(":", 1)[1].strip())
                elif not line and event is not None:
                    try:
                        payload = json.loads("\n".join(data)) if data \
                            else None
                    except ValueError:
                        payload = {"raw": "\n".join(data)}
                    yield event, payload
                    if event == "done":
                        return
                    event, data = None, []
        finally:
            conn.close()


def _parse_retry_after(headers):
    for name, value in headers.items():
        if name.lower() == "retry-after":
            try:
                return float(value)
            except (TypeError, ValueError):
                return None
    return None
