"""The lint engine: files, pragmas, baseline, and rule running.

The engine is rule-agnostic.  It parses every file once into a
:class:`LintFile` (source lines, AST, import-alias map, allow
pragmas), hands the whole batch to each rule — rules may be purely
per-file or cross-file, like the store-token reachability closure —
and post-processes the raw findings:

* findings on a line carrying a matching allow pragma are suppressed
  (and counted, so drift stays visible);
* findings matching a committed baseline entry are dropped as
  grandfathered;
* malformed pragmas (unknown shape, missing reason) become findings
  themselves (rule id ``LINT-PRAGMA``) — a suppression that does not
  say *why* is a violation, not an exemption.

Pragma syntax (reason mandatory)::

    expr()  # repro-lint: allow[RULE-ID] reason text
    # repro-lint: allow[RULE-A,RULE-B] a standalone pragma covers the
    expr()  #                          line below it

Baseline entries are keyed by ``(path, rule, stripped line content)``
rather than line numbers, so unrelated edits above a grandfathered
finding do not invalidate the baseline.
"""

import ast
import json
import os
import pathlib
import re

__all__ = [
    "Finding",
    "LintFile",
    "LintReport",
    "Rule",
    "dotted_name",
    "lint_paths",
    "lint_sources",
    "load_baseline",
    "parse_source",
    "repo_root",
    "write_baseline",
]

#: Rule id for engine-level findings about the pragmas themselves.
PRAGMA_RULE_ID = "LINT-PRAGMA"
#: Rule id for files the engine cannot parse.
PARSE_RULE_ID = "LINT-PARSE"

_PRAGMA_RE = re.compile(r"#\s*repro-lint:\s*(?P<rest>.*)$")
_ALLOW_RE = re.compile(
    r"^allow\[(?P<rules>[A-Za-z0-9_\-,\s]+)\]\s*(?P<reason>.*)$"
)


class Finding:
    """One rule violation at a file/line."""

    __slots__ = ("rule", "path", "line", "message")

    def __init__(self, rule, path, line, message):
        self.rule = str(rule)
        self.path = str(path)
        self.line = int(line)
        self.message = str(message)

    def sort_key(self):
        return (self.path, self.line, self.rule, self.message)

    def as_dict(self):
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "message": self.message}

    def __repr__(self):
        return f"Finding({self.rule}, {self.path}:{self.line})"

    def __eq__(self, other):
        return isinstance(other, Finding) and \
            self.sort_key() == other.sort_key()

    def __hash__(self):
        return hash(self.sort_key())


class Rule:
    """Protocol for lint rules.

    Subclasses define ``rule_id``, ``description``, and ``check``;
    ``check`` receives the full list of :class:`LintFile` (cross-file
    rules need the whole batch) and yields :class:`Finding`.  Per-file
    convenience: override ``check_file`` instead.
    """

    rule_id = "RULE"
    description = ""

    def check(self, files):
        for lf in files:
            yield from self.check_file(lf)

    def check_file(self, lint_file):
        return ()


def dotted_name(node):
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _import_aliases(tree):
    """Map local names to canonical dotted prefixes.

    ``import numpy as np`` -> ``{"np": "numpy"}``;
    ``from numpy import random as r`` -> ``{"r": "numpy.random"}``;
    ``from time import time`` -> ``{"time": "time.time"}`` (the local
    name shadows the module — resolution follows the binding).
    """
    aliases = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else \
                    alias.name.split(".")[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom) and node.module and \
                not node.level:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases


class LintFile:
    """One parsed source file plus lint-relevant derived state.

    Attributes:
        relpath: package-relative posix path (``repro/net/medium.py``)
            — what rules match scopes against and what the baseline
            records.
        display: the path to print in findings (as given by the
            caller, e.g. ``src/repro/net/medium.py``).
        text / lines / tree: the source, split lines, parsed AST.
        aliases: import-alias map from :func:`_import_aliases`.
        allow: ``{line_number: set(rule_ids)}`` from well-formed
            pragmas.
        pragma_findings: engine findings for malformed pragmas.
    """

    def __init__(self, relpath, text, display=None):
        self.relpath = str(relpath).replace(os.sep, "/")
        self.display = display or self.relpath
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text)
        self.aliases = _import_aliases(self.tree)
        self.allow, self.pragma_findings = self._scan_pragmas()

    def _scan_pragmas(self):
        allow = {}
        findings = []
        for lineno, line in enumerate(self.lines, start=1):
            match = _PRAGMA_RE.search(line)
            if match is None:
                continue
            body = _ALLOW_RE.match(match.group("rest").strip())
            if body is None:
                findings.append(Finding(
                    PRAGMA_RULE_ID, self.display, lineno,
                    "malformed repro-lint pragma; expected "
                    "'# repro-lint: allow[RULE-ID] reason'",
                ))
                continue
            rules = {r.strip().upper()
                     for r in body.group("rules").split(",") if r.strip()}
            reason = body.group("reason").strip()
            if not rules:
                findings.append(Finding(
                    PRAGMA_RULE_ID, self.display, lineno,
                    "repro-lint pragma names no rule ids",
                ))
                continue
            if not reason:
                findings.append(Finding(
                    PRAGMA_RULE_ID, self.display, lineno,
                    "repro-lint pragma must give a reason — a "
                    "suppression that does not say why is a violation",
                ))
                continue
            targets = [lineno]
            # A standalone comment line covers the next line too.
            if line.strip().startswith("#"):
                targets.append(lineno + 1)
            for target in targets:
                allow.setdefault(target, set()).update(rules)
        return allow, findings

    def allows(self, lineno, rule_id):
        return rule_id.upper() in self.allow.get(lineno, ())

    def resolve(self, node):
        """Canonical dotted name of a call target, through aliases.

        ``np.random.default_rng`` resolves to
        ``numpy.random.default_rng`` under ``import numpy as np``;
        ``datetime.now`` resolves to ``datetime.datetime.now`` under
        ``from datetime import datetime``.  ``None`` when the chain is
        not rooted at an imported (or builtin) name.
        """
        dotted = dotted_name(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        target = self.aliases.get(head)
        if target is None:
            return dotted  # builtins / module-local names stay as-is
        return f"{target}.{rest}" if rest else target


class LintReport:
    """Outcome of one lint run."""

    def __init__(self, findings, baselined=0, suppressed=0, files=0,
                 parse_failures=()):
        self.findings = sorted(findings, key=Finding.sort_key)
        self.baselined = int(baselined)
        self.suppressed = int(suppressed)
        self.files = int(files)
        self.parse_failures = list(parse_failures)

    @property
    def clean(self):
        return not self.findings

    def counts_by_rule(self):
        counts = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts

    def as_dict(self):
        return {
            "clean": self.clean,
            "files": self.files,
            "baselined": self.baselined,
            "suppressed": self.suppressed,
            "counts": self.counts_by_rule(),
            "findings": [f.as_dict() for f in self.findings],
        }


def parse_source(relpath, text, display=None):
    """A :class:`LintFile`, or a parse-error :class:`Finding`."""
    try:
        return LintFile(relpath, text, display=display)
    except SyntaxError as exc:
        return Finding(PARSE_RULE_ID, display or relpath,
                       exc.lineno or 1, f"file does not parse: {exc.msg}")


def _baseline_key(finding, line_content):
    return (finding.path_for_baseline
            if hasattr(finding, "path_for_baseline") else finding.path,
            finding.rule, line_content)


def _finding_line_content(finding, files_by_display):
    lf = files_by_display.get(finding.path)
    if lf is None or not (1 <= finding.line <= len(lf.lines)):
        return ""
    return lf.lines[finding.line - 1].strip()


def load_baseline(path):
    """The baseline as a suppression multiset ``{key: count}``."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except FileNotFoundError:
        return {}
    except (OSError, ValueError) as exc:
        raise ValueError(f"unreadable baseline {path}: {exc}") from exc
    budget = {}
    for entry in data.get("entries", ()):
        key = (entry["path"], entry["rule"], entry["line_content"])
        budget[key] = budget.get(key, 0) + int(entry.get("count", 1))
    return budget


def write_baseline(path, findings, files_by_display):
    """Persist *findings* as the new grandfathered baseline."""
    counted = {}
    for finding in findings:
        key = (finding.path, finding.rule,
               _finding_line_content(finding, files_by_display))
        counted[key] = counted.get(key, 0) + 1
    entries = [
        {"path": p, "rule": r, "line_content": c, "count": n}
        for (p, r, c), n in sorted(counted.items())
    ]
    payload = {"version": 1, "entries": entries}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def _run(files, parse_failures, rules, baseline):
    raw = []
    for lf in files:
        raw.extend(lf.pragma_findings)
    for rule in rules:
        raw.extend(rule.check(files))
    raw.extend(parse_failures)

    files_by_display = {lf.display: lf for lf in files}
    suppressed = 0
    kept = []
    for finding in raw:
        lf = files_by_display.get(finding.path)
        if finding.rule != PRAGMA_RULE_ID and lf is not None and \
                lf.allows(finding.line, finding.rule):
            suppressed += 1
            continue
        kept.append(finding)

    baselined = 0
    if baseline:
        budget = dict(baseline)
        remaining = []
        for finding in sorted(kept, key=Finding.sort_key):
            key = (finding.path, finding.rule,
                   _finding_line_content(finding, files_by_display))
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                baselined += 1
            else:
                remaining.append(finding)
        kept = remaining

    report = LintReport(kept, baselined=baselined, suppressed=suppressed,
                        files=len(files), parse_failures=parse_failures)
    report._files_by_display = files_by_display
    return report


def lint_sources(sources, rules=None, baseline=None):
    """Lint in-memory sources: ``{relpath: source_text}``.

    The unit-test entry point — rules see exactly the same
    :class:`LintFile` surface as on-disk runs.
    """
    if rules is None:
        from repro.lint.rules import ALL_RULES
        rules = [cls() for cls in ALL_RULES]
    files, failures = [], []
    for relpath in sorted(sources):
        parsed = parse_source(relpath, sources[relpath])
        if isinstance(parsed, Finding):
            failures.append(parsed)
        else:
            files.append(parsed)
    return _run(files, failures, rules, baseline or {})


def repo_root():
    """The repository root (``src/repro/lint`` -> three levels up)."""
    return pathlib.Path(__file__).resolve().parents[3]


def default_scan_root():
    """The package source tree ``src/repro`` scanned by default."""
    return pathlib.Path(__file__).resolve().parents[1]


def iter_python_files(root):
    root = pathlib.Path(root)
    if root.is_file():
        yield root
        return
    for path in sorted(root.rglob("*.py")):
        yield path


def lint_paths(paths=None, rules=None, baseline=None):
    """Lint on-disk paths (defaults to the ``src/repro`` tree).

    *baseline* is a suppression multiset from :func:`load_baseline`
    (``None``/empty disables grandfathering).  Returns a
    :class:`LintReport`.
    """
    if rules is None:
        from repro.lint.rules import ALL_RULES
        rules = [cls() for cls in ALL_RULES]
    scan_root = default_scan_root()
    src_root = scan_root.parent
    roots = [pathlib.Path(p) for p in paths] if paths else [scan_root]
    files, failures = [], []
    seen = set()
    for root in roots:
        for path in iter_python_files(root):
            resolved = path.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            try:
                rel = resolved.relative_to(src_root).as_posix()
            except ValueError:
                rel = resolved.name
            try:
                display = resolved.relative_to(repo_root()).as_posix()
            except ValueError:
                display = str(path)
            text = resolved.read_text(encoding="utf-8")
            parsed = parse_source(rel, text, display=display)
            if isinstance(parsed, Finding):
                failures.append(parsed)
            else:
                files.append(parsed)
    return _run(files, failures, rules, baseline or {})
