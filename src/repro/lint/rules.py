"""The repo-specific rules enforced by ``python -m repro lint``.

Each rule encodes one contract the runtime guards (digest anchors,
store smoke, gateway chaos smoke) can only check after the fact; see
``INVARIANTS.md`` for the rule ↔ runtime-guard map.  Rules match
scopes against package-relative posix paths (``repro/net/medium.py``),
so fixture tests exercise exactly the production scoping.
"""

import ast

from repro.lint.engine import Finding, Rule, dotted_name

__all__ = [
    "ALL_RULES",
    "BlockingInAsyncRule",
    "LockGuardedRule",
    "RngDisciplineRule",
    "SilentExceptRule",
    "StoreTokenRule",
    "WallClockRule",
]


def _in_repro(lint_file):
    return lint_file.relpath.startswith("repro/")


class RngDisciplineRule(Rule):
    """All randomness flows through :mod:`repro.sim.rng` named streams.

    Ad-hoc generators (``np.random.default_rng``, ``random.Random()``,
    module-level ``np.random.*`` / ``random.*`` draws) bypass the
    SHA-256 seed derivation that keeps streams disjoint and
    ``faults=None`` bitwise-identical to the committed digest anchors.
    """

    rule_id = "RNG-DISCIPLINE"
    description = ("ad-hoc RNG construction outside repro.sim.rng "
                   "named streams")

    #: Modules allowed to construct RNGs directly, with why.
    ALLOWLIST = {
        "repro/sim/rng.py":
            "the named-stream provider itself",
        "repro/gateway/client.py":
            "non-sim transport retry jitter; never feeds a simulation",
    }

    def check_file(self, lf):
        if not _in_repro(lf) or lf.relpath in self.ALLOWLIST:
            return
        for node in ast.walk(lf.tree):
            if not isinstance(node, ast.Call):
                continue
            name = lf.resolve(node.func)
            if name is None:
                continue
            bad = (
                name.startswith("numpy.random.")
                or name in ("random.Random", "random.SystemRandom")
                or (name.startswith("random.") and name.count(".") == 1)
            )
            if bad:
                yield Finding(
                    self.rule_id, lf.display, node.lineno,
                    f"ad-hoc RNG call {name}(); derive a named stream "
                    "via repro.sim.rng (RngRegistry.stream/spawn) so "
                    "seeds stay disjoint and reproducible",
                )


class WallClockRule(Rule):
    """Sim-core modules must not read wall-clock time or OS entropy.

    Simulated time is the only time: a ``time.time()`` in the sim core
    makes runs unreproducible.  Only ``repro/service.py`` and
    ``repro/gateway/**`` (and ``tools/``, outside the package) face
    real time.  ``time.monotonic`` / ``time.perf_counter`` stay legal —
    measuring wall duration is not reading wall-clock identity.
    """

    rule_id = "WALL-CLOCK"
    description = "wall-clock or entropy read in sim-core modules"

    BANNED = {
        "time.time", "time.time_ns",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
        "uuid.uuid1", "uuid.uuid4",
        "os.urandom", "os.getrandom",
    }
    BANNED_PREFIXES = ("secrets.",)

    def _exempt(self, lf):
        return (lf.relpath == "repro/service.py"
                or lf.relpath.startswith("repro/gateway/"))

    def check_file(self, lf):
        if not _in_repro(lf) or self._exempt(lf):
            return
        for node in ast.walk(lf.tree):
            if not isinstance(node, ast.Call):
                continue
            name = lf.resolve(node.func)
            if name is None:
                continue
            if name in self.BANNED or \
                    name.startswith(self.BANNED_PREFIXES):
                yield Finding(
                    self.rule_id, lf.display, node.lineno,
                    f"{name}() reads wall-clock/entropy in a sim-core "
                    "module; simulated time and named RNG streams are "
                    "the only nondeterminism sources allowed here",
                )


class LockGuardedRule(Rule):
    """``# guarded-by: <lock>`` attributes only under ``with self.<lock>``.

    Annotation-driven: declare the invariant once, at the attribute's
    initialising assignment::

        self._jobs = {}  # guarded-by: _lock

    and every other ``self._jobs`` access in the class must sit
    lexically inside a ``with self._lock:`` block.  ``__init__`` is
    exempt (no concurrent access before construction completes).
    """

    rule_id = "LOCK-GUARDED"
    description = "guarded-by attribute accessed outside its lock"

    def check_file(self, lf):
        import re
        guard_lines = {}
        pattern = re.compile(r"#\s*guarded-by:\s*([A-Za-z_]\w*)")
        for lineno, line in enumerate(lf.lines, start=1):
            match = pattern.search(line)
            if match:
                guard_lines[lineno] = match.group(1)
        if not guard_lines:
            return
        for cls in ast.walk(lf.tree):
            if isinstance(cls, ast.ClassDef):
                yield from self._check_class(lf, cls, guard_lines)

    @staticmethod
    def _self_attr(node):
        if isinstance(node, ast.Attribute) and \
                isinstance(node.value, ast.Name) and \
                node.value.id == "self":
            return node.attr
        return None

    def _check_class(self, lf, cls, guard_lines):
        guarded = {}
        for node in ast.walk(cls):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for target in targets:
                    attr = self._self_attr(target)
                    lock = guard_lines.get(node.lineno)
                    if attr and lock:
                        guarded[attr] = lock
        if not guarded:
            return
        for method in cls.body:
            if not isinstance(method,
                              (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name == "__init__":
                continue
            regions = {}
            for node in ast.walk(method):
                if isinstance(node, (ast.With, ast.AsyncWith)):
                    for item in node.items:
                        ctx = dotted_name(item.context_expr)
                        if ctx and ctx.startswith("self."):
                            lock = ctx[len("self."):]
                            regions.setdefault(lock, []).append(
                                (node.lineno, node.end_lineno))
            for node in ast.walk(method):
                attr = self._self_attr(node)
                if attr is None or attr not in guarded:
                    continue
                lock = guarded[attr]
                held = any(start <= node.lineno <= end
                           for start, end in regions.get(lock, ()))
                if not held:
                    yield Finding(
                        self.rule_id, lf.display, node.lineno,
                        f"self.{attr} is '# guarded-by: {lock}' but "
                        f"accessed in {cls.name}.{method.name} outside "
                        f"'with self.{lock}:'",
                    )


class StoreTokenRule(Rule):
    """Config classes on the store-key surface stay tokenizable.

    :func:`repro.store.canonical_token` tokenizes dataclasses
    per-field so any config change flips the cache key; a field whose
    type it cannot tokenize degrades the whole key to
    ``Uncacheable`` — silently, at runtime.  This rule checks the key
    surface statically: every ``*Config`` dataclass (and everything
    reachable through its field annotations, or referenced at a
    ``result_key``/``canonical_token`` call site) must have all fields
    statically tokenizable or define ``cache_token()``; a plain
    (non-dataclass) ``*Config`` class must define ``cache_token()``.
    """

    rule_id = "STORE-TOKEN"
    description = "store-key config class not statically tokenizable"

    PRIMITIVES = {"bool", "int", "float", "str", "bytes", "bytearray",
                  "complex", "None"}
    CONTAINERS = {
        "tuple", "list", "dict", "set", "frozenset",
        "typing.Tuple", "typing.List", "typing.Dict", "typing.Set",
        "typing.FrozenSet", "typing.Optional", "typing.Union",
        "typing.Sequence", "typing.Mapping",
    }
    OK_TYPES = {"numpy.ndarray"}

    def check(self, files):
        registry = {}
        for lf in files:
            if not _in_repro(lf):
                continue
            for node in ast.walk(lf.tree):
                if isinstance(node, ast.ClassDef):
                    registry[node.name] = (lf, node)
        if not registry:
            return

        roots = {name for name in registry if name.endswith("Config")}
        for lf in files:
            for node in ast.walk(lf.tree):
                if not isinstance(node, ast.Call):
                    continue
                name = lf.resolve(node.func) or ""
                if not name.endswith(("result_key", "canonical_token")):
                    continue
                for arg in ast.walk(node):
                    if isinstance(arg, ast.Name) and arg.id in registry:
                        roots.add(arg.id)

        seen = set()
        queue = sorted(roots)
        while queue:
            name = queue.pop(0)
            if name in seen:
                continue
            seen.add(name)
            lf, cls = registry[name]
            if self._has_cache_token(cls):
                continue
            if not self._is_dataclass(lf, cls):
                yield Finding(
                    self.rule_id, lf.display, cls.lineno,
                    f"{name} is on the store-key surface but is not a "
                    "dataclass; define cache_token() so config changes "
                    "flip the cache key",
                )
                continue
            for stmt in cls.body:
                if not isinstance(stmt, ast.AnnAssign) or \
                        not isinstance(stmt.target, ast.Name):
                    continue
                if self._is_classvar(lf, stmt.annotation):
                    continue
                ok, referenced = self._tokenizable(
                    lf, stmt.annotation, registry)
                queue.extend(referenced)
                if not ok:
                    field = stmt.target.id
                    ann = ast.unparse(stmt.annotation)
                    yield Finding(
                        self.rule_id, lf.display, stmt.lineno,
                        f"{name}.{field}: annotation '{ann}' is not "
                        "statically tokenizable; canonical_token would "
                        "degrade the store key to Uncacheable — use a "
                        "tokenizable type or define cache_token()",
                    )

    @staticmethod
    def _has_cache_token(cls):
        return any(isinstance(stmt,
                              (ast.FunctionDef, ast.AsyncFunctionDef))
                   and stmt.name == "cache_token" for stmt in cls.body)

    @staticmethod
    def _is_dataclass(lf, cls):
        for deco in cls.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            name = lf.resolve(target)
            if name in ("dataclass", "dataclasses.dataclass"):
                return True
        return False

    @staticmethod
    def _is_classvar(lf, annotation):
        node = annotation
        if isinstance(node, ast.Subscript):
            node = node.value
        return lf.resolve(node) in ("typing.ClassVar", "ClassVar")

    def _tokenizable(self, lf, node, registry):
        """(is_ok, referenced_class_names) for one annotation node."""
        if isinstance(node, ast.Constant):
            if node.value is None or node.value is Ellipsis:
                return True, []
            if isinstance(node.value, str):  # forward reference
                name = node.value
                return (name in registry, [name] if name in registry
                        else [])
            return False, []
        if isinstance(node, (ast.Name, ast.Attribute)):
            raw = dotted_name(node)
            if raw in registry:
                return True, [raw]
            resolved = lf.resolve(node)
            if resolved in self.PRIMITIVES or resolved in self.OK_TYPES:
                return True, []
            if resolved is not None and \
                    resolved.split(".")[-1] in registry:
                name = resolved.split(".")[-1]
                return True, [name]
            return False, []
        if isinstance(node, ast.Subscript):
            base = lf.resolve(node.value)
            if base not in self.CONTAINERS:
                return False, []
            ok = True
            referenced = []
            elts = node.slice.elts if isinstance(node.slice, ast.Tuple) \
                else [node.slice]
            for elt in elts:
                sub_ok, sub_ref = self._tokenizable(lf, elt, registry)
                ok = ok and sub_ok
                referenced.extend(sub_ref)
            return ok, referenced
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            left_ok, left_ref = self._tokenizable(lf, node.left, registry)
            right_ok, right_ref = self._tokenizable(
                lf, node.right, registry)
            return left_ok and right_ok, left_ref + right_ref
        return False, []


class SilentExceptRule(Rule):
    """Broad exception handlers must re-raise or justify themselves.

    A bare ``except:`` / ``except Exception`` / ``except BaseException``
    passes only if its body contains a bare ``raise`` (the
    capture-then-propagate idiom, e.g. the store's torn-write cleanup).
    Every other broad handler is a degradation site and needs an allow
    pragma whose reason says why swallowing is safe there.
    """

    rule_id = "SILENT-EXCEPT"
    description = "broad except without re-raise or allow pragma"

    BROAD = {"Exception", "BaseException",
             "builtins.Exception", "builtins.BaseException"}

    def _is_broad(self, lf, handler):
        if handler.type is None:
            return True
        types = handler.type.elts \
            if isinstance(handler.type, ast.Tuple) else [handler.type]
        return any(lf.resolve(t) in self.BROAD for t in types)

    def check_file(self, lf):
        if not _in_repro(lf):
            return
        for node in ast.walk(lf.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_broad(lf, node):
                continue
            reraises = any(
                isinstance(sub, ast.Raise) and sub.exc is None
                for stmt in node.body for sub in ast.walk(stmt))
            if reraises:
                continue
            caught = "bare except" if node.type is None \
                else f"except {ast.unparse(node.type)}"
            yield Finding(
                self.rule_id, lf.display, node.lineno,
                f"{caught} swallows without re-raising; narrow the "
                "exception types, re-raise, or add an allow pragma "
                "explaining why degradation is safe here",
            )


class BlockingInAsyncRule(Rule):
    """No blocking calls inside ``async def`` without ``to_thread``.

    A blocking call on the event loop stalls every connection the
    gateway is serving; the repo's idiom is
    ``await asyncio.to_thread(blocking_fn, ...)``.
    """

    rule_id = "BLOCKING-IN-ASYNC"
    description = "blocking call inside async def without to_thread"

    BLOCKING = {
        "time.sleep", "open", "builtins.open", "input",
        "socket.socket", "socket.create_connection",
        "socket.getaddrinfo", "socket.gethostbyname",
        "subprocess.run", "subprocess.call", "subprocess.check_call",
        "subprocess.check_output", "subprocess.Popen",
        "urllib.request.urlopen",
    }

    def check_file(self, lf):
        if not _in_repro(lf):
            return
        for node in ast.walk(lf.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._check_async_body(lf, node)

    def _check_async_body(self, lf, func):
        stack = list(func.body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue  # nested defs run in their own context
            if isinstance(node, ast.Call):
                name = lf.resolve(node.func)
                if name in self.BLOCKING:
                    yield Finding(
                        self.rule_id, lf.display, node.lineno,
                        f"blocking call {name}() inside async def "
                        f"{func.name}; wrap it in asyncio.to_thread "
                        "so the event loop keeps serving",
                    )
            stack.extend(ast.iter_child_nodes(node))


ALL_RULES = [
    RngDisciplineRule,
    WallClockRule,
    LockGuardedRule,
    StoreTokenRule,
    SilentExceptRule,
    BlockingInAsyncRule,
]
