"""Command-line front end for the invariant lint plane.

``python -m repro lint`` scans ``src/repro`` with every registered
rule, subtracts pragma suppressions and the committed baseline, and
prints the remaining findings as ``path:line: RULE-ID message`` plus a
per-rule count summary (active / baselined / pragma-suppressed), so
ci_check output shows drift even when the gate passes.

Exit codes are stable for tooling: ``0`` clean, ``1`` unbaselined
findings, ``2`` usage error (unknown rule id, unreadable baseline).
"""

import argparse
import json
import sys

from repro.lint import engine
from repro.lint.rules import ALL_RULES

__all__ = ["main_lint"]

DEFAULT_BASELINE = "LINT_BASELINE.json"


def _select_rules(select):
    by_id = {cls.rule_id: cls for cls in ALL_RULES}
    if not select:
        return [cls() for cls in ALL_RULES], None
    chosen = []
    for rule_id in select:
        cls = by_id.get(rule_id.upper())
        if cls is None:
            return None, rule_id
        chosen.append(cls())
    return chosen, None


def _summary_lines(report):
    lines = []
    counts = report.counts_by_rule()
    for rule_id in sorted(counts):
        lines.append(f"  {rule_id}: {counts[rule_id]} finding(s)")
    lines.append(
        f"[lint] {report.files} file(s), "
        f"{len(report.findings)} active finding(s), "
        f"{report.baselined} baselined, "
        f"{report.suppressed} pragma-suppressed")
    return lines


def main_lint(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description="AST lint of the repo's determinism, store-key, "
                    "and concurrency contracts (see INVARIANTS.md)")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint "
                             "(default: the src/repro tree)")
    parser.add_argument("--json", action="store_true",
                        help="emit the report as JSON for tooling")
    parser.add_argument("--baseline", default=None,
                        help="baseline file of grandfathered findings "
                             f"(default: <repo>/{DEFAULT_BASELINE})")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline (show every finding)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="rewrite the baseline to grandfather all "
                             "current findings, then exit 0")
    parser.add_argument("--select", action="append", default=None,
                        metavar="RULE-ID",
                        help="run only this rule (repeatable)")
    parser.add_argument("--list-rules", action="store_true",
                        help="list rule ids and descriptions, then exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for cls in ALL_RULES:
            print(f"{cls.rule_id}: {cls.description}")
        return 0

    rules, unknown = _select_rules(args.select)
    if rules is None:
        print(f"[lint] unknown rule id: {unknown}", file=sys.stderr)
        return 2

    baseline_path = args.baseline or \
        str(engine.repo_root() / DEFAULT_BASELINE)
    baseline = {}
    if not (args.no_baseline or args.write_baseline):
        try:
            baseline = engine.load_baseline(baseline_path)
        except ValueError as exc:
            print(f"[lint] {exc}", file=sys.stderr)
            return 2

    report = engine.lint_paths(args.paths or None, rules=rules,
                               baseline=baseline)

    if args.write_baseline:
        files_by_display = getattr(report, "_files_by_display", {})
        engine.write_baseline(baseline_path, report.findings,
                              files_by_display)
        print(f"[lint] wrote {len(report.findings)} grandfathered "
              f"finding(s) to {baseline_path}")
        return 0

    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
        return 0 if report.clean else 1

    for finding in report.findings:
        print(f"{finding.path}:{finding.line}: {finding.rule} "
              f"{finding.message}")
    for line in _summary_lines(report):
        print(line)
    return 0 if report.clean else 1


if __name__ == "__main__":
    sys.exit(main_lint())
