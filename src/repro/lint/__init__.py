"""Invariant lint plane: static enforcement of the repo's contracts.

Every hard-won guarantee in this reproduction — bitwise digest anchors
for the ViFi medium, disjoint named RNG streams for the fault plane,
content-addressed store keys that must flip on any config-field
change, first-writer-wins lock discipline in the service — is backed
at runtime by tests that catch violations *after* they corrupt a run.
This package catches the same violations *before* they run, as
machine-checked rules over the AST (stdlib :mod:`ast`, no third-party
dependencies):

``RNG-DISCIPLINE``
    No ad-hoc RNG construction (``np.random.default_rng``,
    ``random.Random()``, module-level ``np.random.*``) anywhere in the
    simulation surface — all randomness flows through
    :mod:`repro.sim.rng` named streams, the invariant that keeps
    ``faults=None`` bitwise-identical to the committed digest anchors.
``WALL-CLOCK``
    No wall-clock or entropy reads (``time.time``, ``datetime.now``,
    ``uuid.uuid4``, ``os.urandom``, ``secrets``) in sim-core modules;
    only ``repro.service`` / ``repro.gateway`` (and tools, which are
    not part of the package) may touch real time.
``LOCK-GUARDED``
    Attributes annotated ``# guarded-by: _lock`` may only be read or
    written inside ``with self._lock`` — a static race detector for
    the class of bug PR 9 fixed at runtime.
``STORE-TOKEN``
    Config dataclasses on the result-store key surface must be
    per-field tokenizable (or define ``cache_token()``), so a new
    config field can never silently fail to flip a cache key.
``SILENT-EXCEPT``
    Broad exception handlers (bare / ``Exception`` / ``BaseException``)
    must re-raise or carry an allow pragma naming why degradation is
    safe at that site.
``BLOCKING-IN-ASYNC``
    No blocking calls (``time.sleep``, ``open``, sockets, subprocess)
    inside ``async def`` without ``asyncio.to_thread``.

Run it as ``python -m repro lint`` (``--json`` for tooling).  Findings
are suppressed per line with a mandatory-reason pragma::

    risky_line()  # repro-lint: allow[RULE-ID] why this is safe here

or grandfathered in a committed baseline file (``LINT_BASELINE.json``,
maintained with ``--write-baseline``).  ``INVARIANTS.md`` at the repo
root maps each rule to the runtime guard that backs it.
"""

from repro.lint.engine import (
    Finding,
    LintReport,
    Rule,
    lint_paths,
    lint_sources,
)
from repro.lint.rules import ALL_RULES

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintReport",
    "Rule",
    "lint_paths",
    "lint_sources",
    "main_lint",
]


def main_lint(argv=None):
    from repro.lint.cli import main_lint as _main
    return _main(argv)
