"""Aggregate performance across BS densities (Figure 2).

"Figure 2 shows the packets delivered by the six handoff policies ...
the independent variable in the graph is the number of BSes in the
system.  There are eleven BSes in VanLAN, and each point in the figure
represents the average of ten trials using randomly selected subsets of
BSes of a given size."
"""

import numpy as np

from repro.analysis.cdf import mean_confidence_interval
from repro.handoff.evaluator import evaluate_policy

__all__ = ["packets_per_day_by_density"]


def packets_per_day_by_density(day_traces, policy_factory, subset_sizes,
                               trials_per_size, rng,
                               training_traces=None):
    """Packets/day for one policy across random BS subsets of each size.

    Args:
        day_traces: the probe traces of one day (list of trips).
        policy_factory: callable ``(training) -> HandoffPolicy``; called
            fresh per trial so policies with state cannot leak across
            subsets.  ``training`` is ``training_traces`` restricted to
            the trial's subset (or ``None``).
        subset_sizes: iterable of subset sizes to evaluate.
        trials_per_size: random subsets drawn per size (paper: 10).
        rng: numpy Generator for subset draws.
        training_traces: previous-day traces for History-style policies.

    Returns:
        dict mapping size -> ``(mean_packets, ci_half_width)``.
    """
    if not day_traces:
        raise ValueError("need at least one trace")
    all_bs = list(day_traces[0].bs_ids)
    results = {}
    for size in subset_sizes:
        size = int(size)
        if size < 1 or size > len(all_bs):
            raise ValueError(f"subset size {size} out of range")
        totals = []
        for _ in range(trials_per_size):
            subset = sorted(rng.choice(all_bs, size=size, replace=False))
            training = None
            if training_traces is not None:
                training = [t.subset(subset) for t in training_traces]
            policy = policy_factory(training)
            day_total = 0
            for trace in day_traces:
                outcome = evaluate_policy(trace.subset(subset), policy)
                day_total += outcome.packets_delivered
            totals.append(day_total)
        results[size] = mean_confidence_interval(np.asarray(totals))
    return results
