"""Distribution helpers: CDFs, medians, confidence intervals.

"All error bars in the graphs below represent 95% confidence
intervals" (Section 5.1) — computed here with the normal approximation
for means and order statistics for medians.
"""

import math

import numpy as np

__all__ = [
    "empirical_cdf",
    "mean_confidence_interval",
    "median",
    "median_confidence_interval",
    "percentile",
]

#: Two-sided 97.5% normal quantile, for 95% intervals.
_Z95 = 1.959963984540054


def empirical_cdf(values):
    """Empirical CDF of a sample.

    Returns:
        ``(xs, ys)`` — sorted values and cumulative probabilities in
        (0, 1]; empty input yields empty arrays.
    """
    xs = np.sort(np.asarray(values, dtype=float))
    if xs.size == 0:
        return xs, xs
    ys = np.arange(1, xs.size + 1) / xs.size
    return xs, ys


def median(values):
    """Median; 0.0 for an empty sample (a disconnected run)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return 0.0
    return float(np.median(arr))


def percentile(values, q):
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return 0.0
    return float(np.percentile(arr, q))


def mean_confidence_interval(values, confidence=0.95):
    """Mean and half-width of its normal-approximation CI.

    Returns:
        ``(mean, half_width)``; half_width is 0 for samples of size
        one or less.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return 0.0, 0.0
    mean = float(arr.mean())
    if arr.size < 2:
        return mean, 0.0
    sem = float(arr.std(ddof=1)) / math.sqrt(arr.size)
    if confidence != 0.95:
        raise ValueError("only 95% intervals are supported")
    return mean, _Z95 * sem


def median_confidence_interval(values, confidence=0.95):
    """Median and a (lo, hi) order-statistic confidence interval.

    Uses the binomial order-statistic bound; degenerates to the sample
    range for tiny samples.
    """
    arr = np.sort(np.asarray(list(values), dtype=float))
    n = arr.size
    if n == 0:
        return 0.0, (0.0, 0.0)
    med = float(np.median(arr))
    if n < 3:
        return med, (float(arr[0]), float(arr[-1]))
    half = _Z95 * math.sqrt(n) / 2.0
    lo_idx = max(int(math.floor(n / 2.0 - half)), 0)
    hi_idx = min(int(math.ceil(n / 2.0 + half)), n - 1)
    return med, (float(arr[lo_idx]), float(arr[hi_idx]))
