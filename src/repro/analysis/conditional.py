"""Two-BS conditional reception probabilities (Figure 6b).

"P(A) and P(B) are the unconditional downstream packet reception
probabilities from BSes A and B.  P(A_{i+1} | !A_i) is the conditional
reception probability of receiving the (i+1)-th packet from A given
that the i-th packet from A was lost ... after a loss from a BS, the
reception probability of the next packet from it is very low.  But the
second BS's probability of delivering the next packet is only slightly
lower than its unconditional probability."

This is the paper's evidence that burst losses are *path dependent*
(multipath fading on one link) rather than receiver dependent — the
property that makes macrodiversity work.
"""

import numpy as np

__all__ = ["two_bs_conditionals"]


def _conditional(target_next, condition_now):
    """Mean of ``target_next`` where ``condition_now`` holds."""
    if condition_now.sum() == 0:
        return float("nan")
    return float(target_next[condition_now].mean())


def two_bs_conditionals(recv_a, recv_b):
    """The six probabilities of Figure 6(b).

    Args:
        recv_a / recv_b: boolean reception sequences from BSes A and B,
            aligned in time (packets interleaved as in the paper's
            20 ms experiment).

    Returns:
        dict with keys ``P(A)``, ``P(A+1|!A)``, ``P(B+1|!A)``,
        ``P(B)``, ``P(B+1|!B)``, ``P(A+1|!B)``.
    """
    a = np.asarray(recv_a, dtype=bool)
    b = np.asarray(recv_b, dtype=bool)
    if a.shape != b.shape:
        raise ValueError("reception sequences must be the same length")
    if a.size < 2:
        raise ValueError("need at least two packets")
    lost_a = ~a[:-1]
    lost_b = ~b[:-1]
    return {
        "P(A)": float(a.mean()),
        "P(A+1|!A)": _conditional(a[1:], lost_a),
        "P(B+1|!A)": _conditional(b[1:], lost_a),
        "P(B)": float(b.mean()),
        "P(B+1|!B)": _conditional(b[1:], lost_b),
        "P(A+1|!B)": _conditional(a[1:], lost_b),
    }
