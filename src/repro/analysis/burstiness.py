"""Loss burstiness: the Figure 6(a) conditional-loss curve.

"The figure plots the probability of losing the packet (i+k) from a BS
to vehicle in VanLAN given that packet i was lost.  In this experiment,
a single BS sends packets every 10 ms ... The probability of losing a
packet immediately after a loss is much higher than the overall loss
probability."
"""

import numpy as np

__all__ = ["conditional_loss_curve", "overall_loss_probability"]


def overall_loss_probability(losses):
    """Unconditional loss probability of a boolean loss sequence."""
    arr = np.asarray(losses, dtype=bool)
    if arr.size == 0:
        return 0.0
    return float(arr.mean())


def conditional_loss_curve(losses, lags):
    """``P(loss at i+k | loss at i)`` for each lag *k*.

    Args:
        losses: boolean sequence, True = packet lost.
        lags: iterable of positive integer lags.

    Returns:
        dict mapping lag -> conditional probability (``nan`` when no
        loss events exist at that lag's horizon).
    """
    arr = np.asarray(losses, dtype=bool)
    curve = {}
    for k in lags:
        k = int(k)
        if k <= 0:
            raise ValueError("lags must be positive")
        if arr.size <= k:
            curve[k] = float("nan")
            continue
        base = arr[:-k]
        ahead = arr[k:]
        conditioning = base.sum()
        if conditioning == 0:
            curve[k] = float("nan")
        else:
            curve[k] = float(ahead[base].mean())
    return curve
