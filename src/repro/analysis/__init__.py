"""Measurement-study analytics (Sections 3.3 and 3.4).

Pure computations over traces and delivery logs:

* :mod:`repro.analysis.cdf` — empirical CDFs, medians, confidence
  intervals (the error bars on every figure).
* :mod:`repro.analysis.diversity` — visible-BS counts per second
  (Figure 5).
* :mod:`repro.analysis.burstiness` — conditional loss curves
  ``P(loss i+k | loss i)`` (Figure 6a).
* :mod:`repro.analysis.conditional` — two-BS conditional reception
  probabilities (Figure 6b).
* :mod:`repro.analysis.aggregate` — packets-per-day aggregates across
  BS subsets (Figure 2).
"""

from repro.analysis.aggregate import packets_per_day_by_density
from repro.analysis.burstiness import conditional_loss_curve
from repro.analysis.cdf import (
    empirical_cdf,
    mean_confidence_interval,
    median,
)
from repro.analysis.conditional import two_bs_conditionals
from repro.analysis.diversity import visible_bs_cdf

__all__ = [
    "conditional_loss_curve",
    "empirical_cdf",
    "mean_confidence_interval",
    "median",
    "packets_per_day_by_density",
    "two_bs_conditionals",
    "visible_bs_cdf",
]
