"""Basestation diversity: the Figure 5 visible-BS distributions.

"The graphs plot the CDF of the number of BSes from which the vehicles
hear beacons in one-second intervals" — with two visibility notions:
at least one beacon heard (Figure 5a) and at least 50% of beacons
heard (Figure 5b).
"""

import numpy as np

from repro.analysis.cdf import empirical_cdf

__all__ = ["visible_bs_cdf", "visible_bs_histogram"]


def visible_bs_histogram(beacon_log, min_ratio=None, max_count=None):
    """Histogram of per-second visible-BS counts.

    Args:
        beacon_log: a :class:`~repro.testbeds.traces.BeaconLog`.
        min_ratio: ``None`` for the >=1-beacon notion, else the
            minimum per-second beacon reception ratio (0.5 in Fig. 5b).
        max_count: histogram length (defaults to the BS population).

    Returns:
        Integer array ``h`` with ``h[k]`` = seconds in which exactly
        *k* BSes were visible.
    """
    counts = beacon_log.visible_counts(min_ratio)
    top = beacon_log.n_bs if max_count is None else int(max_count)
    return np.bincount(counts, minlength=top + 1)[: top + 1]


def visible_bs_cdf(beacon_log, min_ratio=None):
    """CDF of per-second visible-BS counts (one Figure 5 curve).

    Returns:
        ``(xs, ys)`` — BS counts and cumulative fraction of seconds.
    """
    return empirical_cdf(beacon_log.visible_counts(min_ratio))
