"""Uninterrupted-connectivity sessions (Sections 3.3 and 5.2).

The paper's interactive-application metric: a *session* is a maximal
run of consecutive windows with adequate connectivity, where adequacy
means the combined reception ratio within each window of
``interval_s`` seconds is at least ``min_ratio``.  Figure 3(d) plots
the CDF of *time spent* in sessions of a given length; Figures 4 and 7
report its median as the definitions vary.
"""

import numpy as np

__all__ = [
    "adequacy_runs",
    "session_lengths",
    "time_in_sessions_cdf",
    "time_weighted_median_session",
]


def adequacy_runs(adequate):
    """Maximal runs of True in a boolean sequence.

    Returns:
        List of ``(start_index, run_length)`` pairs.
    """
    runs = []
    start = None
    for i, flag in enumerate(adequate):
        if flag and start is None:
            start = i
        elif not flag and start is not None:
            runs.append((start, i - start))
            start = None
    if start is not None:
        runs.append((start, len(adequate) - start))
    return runs


def session_lengths(adequate, window_s=1.0):
    """Session lengths in seconds from a per-window adequacy sequence."""
    return [length * window_s for _, length in adequacy_runs(adequate)]


def time_in_sessions_cdf(lengths):
    """The Figure 3(d) distribution: time spent in sessions by length.

    Args:
        lengths: session lengths in seconds.

    Returns:
        ``(xs, ys)`` — session lengths (sorted) and the cumulative
        fraction of *connected time* spent in sessions of length <= x.
    """
    if not lengths:
        return np.zeros(0), np.zeros(0)
    xs = np.sort(np.asarray(lengths, dtype=float))
    weights = xs / xs.sum()
    ys = np.cumsum(weights)
    return xs, ys


def time_weighted_median_session(lengths):
    """Median session length weighted by time spent in each session.

    This is the "median session length" of Figures 4 and 7: the session
    length L such that half of all connected time is spent in sessions
    of length at most L.  Returns 0.0 when there were no sessions.
    """
    xs, ys = time_in_sessions_cdf(lengths)
    if len(xs) == 0:
        return 0.0
    idx = int(np.searchsorted(ys, 0.5))
    idx = min(idx, len(xs) - 1)
    return float(xs[idx])
