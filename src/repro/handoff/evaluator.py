"""Trace-driven evaluation of handoff policies (Section 3.1).

The evaluation replays a broadcast-probe trace against a policy: "The
policy determines which BS a client associates with at a given time.
The client can communicate with only the associated BS when using a
hard handoff policy.  We assume that clients have a workload that
mirrors our trace traffic; i.e., they wish to send and receive packets
every 100 ms.  The traces of broadcast packets and the current
association determine which packets are successfully received."

Association decisions are made once per second; the probe outcomes of
the chosen BS during that second determine delivery.  AllBSes is
special-cased: a slot succeeds if any BS's probe got through.
"""

import numpy as np

from repro.handoff.base import PerSecondObservation

__all__ = ["PolicyOutcome", "evaluate_policy"]


class PolicyOutcome:
    """Result of replaying one policy over one trace.

    Attributes:
        policy_name: name of the evaluated policy.
        slot_dt: trace slot duration (s).
        up_delivered / down_delivered: bool arrays over evaluated slots.
        association: int array ``[n_secs]`` of chosen bs_ids (-1 = none).
    """

    def __init__(self, policy_name, slot_dt, up_delivered, down_delivered,
                 association):
        self.policy_name = policy_name
        self.slot_dt = float(slot_dt)
        self.up_delivered = np.asarray(up_delivered, dtype=bool)
        self.down_delivered = np.asarray(down_delivered, dtype=bool)
        self.association = np.asarray(association, dtype=int)

    @property
    def n_slots(self):
        return len(self.up_delivered)

    @property
    def slots_per_second(self):
        return int(round(1.0 / self.slot_dt))

    @property
    def packets_delivered(self):
        """Total packets delivered, both directions."""
        return int(self.up_delivered.sum() + self.down_delivered.sum())

    @property
    def handoff_count(self):
        """Number of association changes (ignoring unassociated gaps)."""
        assoc = self.association[self.association >= 0]
        if len(assoc) < 2:
            return 0
        return int((np.diff(assoc) != 0).sum())

    def window_reception_ratio(self, interval_s=1.0):
        """Combined (up+down) reception ratio per window of *interval_s*."""
        window = int(round(interval_s * self.slots_per_second))
        if window <= 0:
            raise ValueError("interval shorter than a slot")
        n_windows = self.n_slots // window
        if n_windows == 0:
            return np.zeros(0)
        up = self.up_delivered[: n_windows * window].reshape(n_windows,
                                                             window)
        down = self.down_delivered[: n_windows * window].reshape(n_windows,
                                                                 window)
        return (up.sum(axis=1) + down.sum(axis=1)) / (2.0 * window)

    def adequate_windows(self, interval_s=1.0, min_ratio=0.5):
        """Boolean adequacy per window (the paper's Section 3.3 notion)."""
        return self.window_reception_ratio(interval_s) >= min_ratio


def evaluate_policy(trace, policy):
    """Replay *policy* over *trace* and return a :class:`PolicyOutcome`.

    The contract with the policy: for each second, :meth:`choose` is
    called first (deciding the association for that second), then
    :meth:`observe` delivers the second's beacon measurements.
    Practical policies therefore act on the past only; BestBS's
    :meth:`choose` indexes the future second by design.
    """
    policy.reset()
    if policy.needs_future:
        policy.attach_trace(trace)

    sps = trace.slots_per_second
    n_secs = trace.n_slots // sps
    n_eval_slots = n_secs * sps
    up = trace.up[:n_eval_slots]
    down = trace.down[:n_eval_slots]
    rssi = trace.rssi[:n_eval_slots]

    up_delivered = np.zeros(n_eval_slots, dtype=bool)
    down_delivered = np.zeros(n_eval_slots, dtype=bool)
    association = np.full(n_secs, -1, dtype=int)
    col_of = {bs: j for j, bs in enumerate(trace.bs_ids)}

    for sec in range(n_secs):
        lo, hi = sec * sps, (sec + 1) * sps
        if policy.uses_all_bs:
            up_delivered[lo:hi] = up[lo:hi].any(axis=1)
            down_delivered[lo:hi] = down[lo:hi].any(axis=1)
        else:
            chosen = policy.choose()
            if chosen is not None:
                j = col_of[chosen]
                association[sec] = chosen
                up_delivered[lo:hi] = up[lo:hi, j]
                down_delivered[lo:hi] = down[lo:hi, j]

        # Build the second's observation from beacon (downstream probe)
        # receptions, then let the policy digest it.
        heard = {}
        mean_rssi = {}
        for bs, j in col_of.items():
            count = int(down[lo:hi, j].sum())
            if count > 0:
                heard[bs] = count
                mean_rssi[bs] = float(np.nanmean(rssi[lo:hi, j]))
        policy.observe(PerSecondObservation(
            second=sec,
            beacons_heard=heard,
            beacons_expected=sps,
            mean_rssi=mean_rssi,
            position=tuple(trace.positions[hi - 1]),
        ))

    return PolicyOutcome(
        policy_name=policy.name,
        slot_dt=trace.slot_dt,
        up_delivered=up_delivered,
        down_delivered=down_delivered,
        association=association,
    )
