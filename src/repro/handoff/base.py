"""Handoff policy interface.

A handoff policy decides, once per second, which basestation the client
associates with for the *next* second.  Policies receive only what a
real client could observe — beacons heard in the elapsed second, their
RSSI, and (for History) position — except the two oracle policies,
which declare :attr:`HandoffPolicy.needs_future` and receive the trace.

The per-second grain follows the paper: BestBS re-associates "at the
beginning of each one-second period", and both RSSI and BRR average
beacon observations with an exponential factor of one half per update.
"""

from dataclasses import dataclass

__all__ = ["HandoffPolicy", "PerSecondObservation"]


@dataclass
class PerSecondObservation:
    """What the client observed during one second of the trace.

    Attributes:
        second: index of the elapsed second.
        beacons_heard: mapping bs_id -> beacons decoded this second.
        beacons_expected: nominal beacons per second (10).
        mean_rssi: mapping bs_id -> mean RSSI of decoded beacons; BSes
            with no decoded beacon are absent.
        position: vehicle (x, y) at the end of the second.
    """

    second: int
    beacons_heard: dict
    beacons_expected: int
    mean_rssi: dict
    position: tuple


class HandoffPolicy:
    """Base class for association policies.

    Subclasses implement :meth:`observe` (digest one second of
    measurements) and :meth:`choose` (pick the BS for the next second).
    The evaluator calls them in strict alternation, so policies may
    keep running state.
    """

    #: Name used in result tables.
    name = "base"

    #: True for oracle policies that receive the trace via
    #: :meth:`attach_trace` before evaluation.
    needs_future = False

    #: True for policies that use every BS at once (AllBSes); the
    #: evaluator special-cases packet accounting for them.
    uses_all_bs = False

    def reset(self):
        """Clear state before a fresh trace replay."""

    def attach_trace(self, trace):
        """Give oracle policies the full trace.  No-op by default."""

    def observe(self, observation):
        """Digest one second of beacon measurements."""

    def choose(self):
        """Return the bs_id to associate with next, or ``None``."""
        raise NotImplementedError

    def __repr__(self):
        return f"{type(self).__name__}()"
