"""The six handoff policies of Section 3.1.

Four practical policies (RSSI, BRR, Sticky, History) and two oracles
(BestBS, AllBSes).  All hard-handoff policies associate with exactly
one BS at a time; AllBSes uses every BS opportunistically and upper
bounds any handoff protocol.
"""

import math

from repro.handoff.base import HandoffPolicy

__all__ = [
    "AllBsesPolicy",
    "BestBsPolicy",
    "BrrPolicy",
    "HistoryPolicy",
    "RssiPolicy",
    "StickyPolicy",
    "standard_policies",
]


class RssiPolicy(HandoffPolicy):
    """Associate to the BS with the highest exponentially averaged RSSI.

    "This policy is similar to what many clients, including the NICs in
    our testbed, use currently in infrastructure WiFi networks."  The
    averaging factor is one half (Section 3.1).  A BS unheard for
    ``stale_after`` consecutive seconds is forgotten, since a stale
    RSSI average says nothing about current reachability.
    """

    name = "RSSI"

    def __init__(self, alpha=0.5, stale_after=3):
        self.alpha = float(alpha)
        self.stale_after = int(stale_after)
        self.reset()

    def reset(self):
        self._avg = {}
        self._last_heard = {}
        self._second = 0

    def observe(self, observation):
        for bs, rssi in observation.mean_rssi.items():
            if bs in self._avg:
                self._avg[bs] = (
                    self.alpha * rssi + (1 - self.alpha) * self._avg[bs]
                )
            else:
                self._avg[bs] = rssi
            self._last_heard[bs] = observation.second
        stale = [
            bs for bs, last in self._last_heard.items()
            if observation.second - last >= self.stale_after
        ]
        for bs in stale:
            del self._avg[bs]
            del self._last_heard[bs]
        self._second = observation.second + 1

    def choose(self):
        if not self._avg:
            return None
        return max(self._avg.items(), key=lambda kv: (kv[1], -kv[0]))[0]


class BrrPolicy(HandoffPolicy):
    """Associate to the BS with the highest averaged beacon reception ratio.

    "Inspired by wireless routing protocols that are based on the
    reception ratio of probes" (ETX-style).  Unlike RSSI, silence is
    informative: a known BS that is not heard contributes a zero sample,
    so its average decays naturally.
    """

    name = "BRR"

    def __init__(self, alpha=0.5, forget_below=0.01):
        self.alpha = float(alpha)
        self.forget_below = float(forget_below)
        self.reset()

    def reset(self):
        self._avg = {}

    def observe(self, observation):
        ratios = {
            bs: heard / observation.beacons_expected
            for bs, heard in observation.beacons_heard.items()
        }
        for bs in set(self._avg) | set(ratios):
            sample = ratios.get(bs, 0.0)
            if bs in self._avg:
                self._avg[bs] = (
                    self.alpha * sample + (1 - self.alpha) * self._avg[bs]
                )
            else:
                self._avg[bs] = self.alpha * sample
        # Forget BSes whose average has decayed to noise.
        for bs in [b for b, v in self._avg.items() if v < self.forget_below]:
            del self._avg[bs]

    def choose(self):
        if not self._avg:
            return None
        return max(self._avg.items(), key=lambda kv: (kv[1], -kv[0]))[0]

    def current_average(self, bs):
        """Expose the averaged BRR (used by ViFi's anchor selection)."""
        return self._avg.get(bs, 0.0)


class StickyPolicy(HandoffPolicy):
    """Stay with the current BS until it is silent for a timeout.

    "The client does not disassociate from the current BS until
    connectivity is absent for a pre-defined time period, set to three
    seconds in our evaluation.  Once disassociated, the client picks
    the BS with the highest signal strength."  (Used in the CarTel
    study.)
    """

    name = "Sticky"

    def __init__(self, timeout_s=3):
        self.timeout = int(timeout_s)
        self.reset()

    def reset(self):
        self._current = None
        self._silent_for = 0
        self._last_rssi = {}

    def observe(self, observation):
        self._last_rssi = dict(observation.mean_rssi)
        if self._current is not None:
            if observation.beacons_heard.get(self._current, 0) > 0:
                self._silent_for = 0
            else:
                self._silent_for += 1
                if self._silent_for >= self.timeout:
                    self._current = None
                    self._silent_for = 0
        if self._current is None and self._last_rssi:
            self._current = max(
                self._last_rssi.items(), key=lambda kv: (kv[1], -kv[0])
            )[0]

    def choose(self):
        return self._current


class HistoryPolicy(HandoffPolicy):
    """Associate to the historically best BS for the current location.

    "The client associates to the BS that has historically provided the
    best average performance at that location.  Performance is measured
    as the sum of reception ratios in the two directions, and the
    average is computed across traversals of the location in the
    previous day."  (After MobiSteer.)

    Call :meth:`train` with the previous day's probe traces before
    evaluating.  Locations are square grid cells of ``bin_m`` metres.
    """

    name = "History"

    def __init__(self, bin_m=25.0):
        self.bin_m = float(bin_m)
        self._scores = {}
        self.reset()

    def reset(self):
        self._position = None
        self._fallback_rssi = {}

    def _bin(self, x, y):
        return (int(math.floor(x / self.bin_m)),
                int(math.floor(y / self.bin_m)))

    def train(self, traces):
        """Learn per-location BS scores from previous-day traces."""
        sums = {}
        counts = {}
        for trace in traces:
            up_rr, down_rr = trace.per_second_reception()
            sps = trace.slots_per_second
            n_secs = up_rr.shape[0]
            for sec in range(n_secs):
                x, y = trace.positions[min(sec * sps, trace.n_slots - 1)]
                cell = self._bin(x, y)
                for j, bs in enumerate(trace.bs_ids):
                    key = (cell, bs)
                    sums[key] = sums.get(key, 0.0) + (
                        up_rr[sec, j] + down_rr[sec, j]
                    )
                    counts[key] = counts.get(key, 0) + 1
        self._scores = {}
        for key, total in sums.items():
            cell, bs = key
            self._scores.setdefault(cell, {})[bs] = total / counts[key]

    def observe(self, observation):
        self._position = observation.position
        self._fallback_rssi = dict(observation.mean_rssi)

    def choose(self):
        if self._position is not None:
            cell = self._bin(*self._position)
            scores = self._scores.get(cell)
            if scores:
                best = max(scores.items(), key=lambda kv: (kv[1], -kv[0]))
                if best[1] > 0:
                    return best[0]
        # Untrained location: fall back to the strongest current beacon.
        if self._fallback_rssi:
            return max(
                self._fallback_rssi.items(), key=lambda kv: (kv[1], -kv[0])
            )[0]
        return None


class BestBsPolicy(HandoffPolicy):
    """Oracle hard handoff: the best BS of the *future* second.

    "At the beginning of each one-second period, the client associates
    to the BS that provides the best performance in the future one
    second ... the sum of reception ratios in the two directions.  This
    method is not practical because clients cannot reliably predict
    future performance."  It upper-bounds hard handoff.
    """

    name = "BestBS"
    needs_future = True

    def __init__(self):
        self.reset()

    def reset(self):
        self._scores = None
        self._bs_ids = None
        self._second = 0

    def attach_trace(self, trace):
        up_rr, down_rr = trace.per_second_reception()
        self._scores = up_rr + down_rr
        self._bs_ids = list(trace.bs_ids)
        self._second = 0

    def observe(self, observation):
        self._second = observation.second + 1

    def choose(self):
        if self._scores is None or self._second >= len(self._scores):
            return None
        row = self._scores[self._second]
        best = int(row.argmax())
        if row[best] <= 0:
            return None
        return self._bs_ids[best]


class AllBsesPolicy(HandoffPolicy):
    """Oracle macrodiversity: use every BS in the vicinity at once.

    "A transmission by the client is considered successful if at least
    one BS receives the packet.  In the downstream direction, if the
    client hears a packet from at least one BS in an 100-ms interval,
    the packet is considered as delivered."  Upper-bounds *any* handoff
    protocol.
    """

    name = "AllBSes"
    needs_future = True
    uses_all_bs = True

    def choose(self):
        return None


def standard_policies(history_training=None):
    """The paper's six policies, ready for evaluation.

    Args:
        history_training: previous-day traces to train History with;
            when ``None``, History is omitted (it cannot run untrained).

    Returns:
        List of policy instances in the paper's presentation order.
    """
    policies = [RssiPolicy(), BrrPolicy(), StickyPolicy()]
    if history_training is not None:
        history = HistoryPolicy()
        history.train(history_training)
        policies.append(history)
    policies.extend([BestBsPolicy(), AllBsesPolicy()])
    return policies
