"""Handoff policy study (Section 3 of the paper).

Six handoff strategies evaluated trace-driven over broadcast-probe
traces:

* practical hard handoff: :class:`RssiPolicy`, :class:`BrrPolicy`,
  :class:`StickyPolicy`, :class:`HistoryPolicy`;
* oracle hard handoff: :class:`BestBsPolicy` (knows the future second);
* oracle macrodiversity: :class:`AllBsesPolicy` (uses every BS at once).

:mod:`repro.handoff.evaluator` replays a policy against a
:class:`~repro.testbeds.traces.ProbeTrace` and reports delivered
packets; :mod:`repro.handoff.sessions` extracts periods of
uninterrupted connectivity under configurable definitions of "adequate
connectivity" (averaging interval and minimum reception ratio).
"""

from repro.handoff.base import HandoffPolicy, PerSecondObservation
from repro.handoff.evaluator import PolicyOutcome, evaluate_policy
from repro.handoff.policies import (
    AllBsesPolicy,
    BestBsPolicy,
    BrrPolicy,
    HistoryPolicy,
    RssiPolicy,
    StickyPolicy,
    standard_policies,
)
from repro.handoff.sessions import (
    session_lengths,
    time_in_sessions_cdf,
    time_weighted_median_session,
)

__all__ = [
    "AllBsesPolicy",
    "BestBsPolicy",
    "BrrPolicy",
    "HandoffPolicy",
    "HistoryPolicy",
    "PerSecondObservation",
    "PolicyOutcome",
    "RssiPolicy",
    "StickyPolicy",
    "evaluate_policy",
    "session_lengths",
    "standard_policies",
    "time_in_sessions_cdf",
    "time_weighted_median_session",
]
