"""Command-line entry point: run a paper experiment by name.

Usage::

    python -m repro list
    python -m repro fig07 [--seed N]
    python -m repro table1
    python -m repro bench
    python -m repro lint [--json]
    python -m repro store stats
    python -m repro serve --list

Each experiment prints the same rows/series as the corresponding paper
artifact at a reduced scale.  For the full benchmark harness (with
shape assertions and JSON outputs) use
``pytest benchmarks/ --benchmark-only``.

``bench`` runs the pinned performance workloads, rewrites the tracked
``BENCH_perf.json``, and exits non-zero on a >20% sim-rate regression
against the committed numbers (see ``tools/perf_smoke.py`` for the
flags, including ``--profile`` for a cProfile top-N per workload).

``store`` inspects/maintains the content-addressed result store
(:mod:`repro.store`); ``serve`` runs experiment jobs from stdin JSON
lines through the hardened service layer (:mod:`repro.service`).
Experiments memoize through the store named by ``$REPRO_RESULT_STORE``
when it is set.
"""

import argparse
import json
import sys


def _fig05(seed):
    from repro.experiments.study import diversity_cdfs
    from repro.testbeds.dieselnet import DieselNetTestbed
    from repro.testbeds.vanlan import VanLanTestbed

    vanlan = VanLanTestbed(seed=seed)
    logs = {
        "VanLAN": [vanlan.beacon_log_from_trace(
            vanlan.generate_probe_trace(0))],
        "DieselNet Ch1": [
            DieselNetTestbed(1, seed=seed).generate_beacon_log(0)],
        "DieselNet Ch6": [
            DieselNetTestbed(6, seed=seed).generate_beacon_log(0)],
    }
    out = {}
    for env, env_logs in logs.items():
        _, _, hist = diversity_cdfs(env_logs)
        out[env] = {"histogram(>=1 beacon)": [int(h) for h in hist]}
    return out


def _fig07(seed):
    from repro.experiments.linklayer import (
        link_layer_sessions,
        policy_session_medians,
    )
    from repro.testbeds.vanlan import VanLanTestbed

    testbed = VanLanTestbed(seed=3)
    _, live = link_layer_sessions(testbed, trips=(0,), seed=seed)
    _, oracle = policy_session_medians(testbed, trips=(0,))
    return {"median_session_s": {**live, **oracle}}


def _fig09(seed):
    from repro.experiments.tcpbench import standard_tcp_variants, tcp_vanlan
    from repro.testbeds.vanlan import VanLanTestbed

    return tcp_vanlan(VanLanTestbed(seed=5), trips=(0,),
                      variants=standard_tcp_variants(), seed=seed)


def _fig11(seed):
    from repro.experiments.voipbench import voip_vanlan
    from repro.testbeds.vanlan import VanLanTestbed

    return voip_vanlan(VanLanTestbed(seed=5), trips=(0,), seed=seed)


def _table1(seed):
    from repro.experiments.coordination import coordination_table
    from repro.testbeds.vanlan import VanLanTestbed

    reports = coordination_table(VanLanTestbed(seed=5), trips=(0,),
                                 seed=seed)
    return {direction: dict(report.rows())
            for direction, report in reports.items()}


def _table2(seed):
    from repro.experiments.coordination import formulation_comparison
    from repro.testbeds.dieselnet import DieselNetTestbed

    return formulation_comparison(DieselNetTestbed(channel=1, seed=2),
                                  days=(0,), seed=seed)


def _validate(seed):
    from repro.experiments.validation import validate_trace_methodology
    from repro.testbeds.vanlan import VanLanTestbed

    return validate_trace_methodology(VanLanTestbed(seed=5), trips=(0,),
                                      seed=seed)


EXPERIMENTS = {
    "fig05": (_fig05, "visible-BS diversity histograms"),
    "fig07": (_fig07, "link-layer session medians (ViFi vs policies)"),
    "fig09": (_fig09, "TCP on VanLAN (BRR / diversity-only / ViFi)"),
    "fig11": (_fig11, "VoIP sessions on VanLAN (ViFi vs BRR)"),
    "table1": (_table1, "ViFi coordination statistics"),
    "table2": (_table2, "relaying-formulation comparison"),
    "validate": (_validate, "trace-driven vs deployment validation"),
}


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run a reduced-scale ViFi paper experiment.",
    )
    parser.add_argument("experiment",
                        choices=sorted(EXPERIMENTS)
                        + ["bench", "lint", "list", "store", "serve"],
                        help="experiment id, 'bench' for the perf "
                             "smoke, 'lint' for the invariant lint, "
                             "'store'/'serve' for the result "
                             "store and service, or 'list' to "
                             "enumerate")
    parser.add_argument("--seed", type=int, default=7,
                        help="root seed (default 7)")
    args, extra = parser.parse_known_args(argv)
    if extra and args.experiment not in ("bench", "lint", "store",
                                         "serve"):
        parser.error(f"unrecognized arguments: {' '.join(extra)}")

    if args.experiment == "lint":
        from repro.lint.cli import main_lint
        return main_lint(extra)

    if args.experiment == "store":
        from repro.store import main_store
        return main_store(extra)

    if args.experiment == "serve":
        from repro.service import main_serve
        return main_serve(extra)

    if args.experiment == "bench":
        import importlib.util
        import pathlib
        smoke = (pathlib.Path(__file__).resolve().parents[2]
                 / "tools" / "perf_smoke.py")
        spec = importlib.util.spec_from_file_location("perf_smoke", smoke)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module.main(extra)

    if args.experiment == "list":
        for name, (_, description) in sorted(EXPERIMENTS.items()):
            print(f"{name:<10s} {description}")
        for name, description in (
            ("bench", "pinned perf workloads -> BENCH_perf.json"),
            ("lint", "AST invariant lint (see INVARIANTS.md)"),
            ("store", "inspect/verify/clear the result store"),
            ("serve", "run experiment jobs from stdin JSON lines"),
        ):
            print(f"{name:<10s} {description}")
        return 0

    runner, description = EXPERIMENTS[args.experiment]
    print(f"# {args.experiment}: {description} (seed {args.seed})",
          file=sys.stderr)
    result = runner(args.seed)
    print(json.dumps(result, indent=2, default=float))
    return 0


if __name__ == "__main__":
    sys.exit(main())
