#!/usr/bin/env python
"""Diff two cProfile ``.pstats`` dumps function by function.

Usage::

    python tools/profile_diff.py BEFORE.pstats AFTER.pstats
        [--top N] [--sort tottime|cumtime] [--min-delta SECONDS]

Perf PRs argue from residual profiles; eyeballing two ``print_stats``
printouts side by side hides exactly the information that matters —
which functions got slower, which got faster, and what appeared or
disappeared.  This tool aligns the two dumps on the function key
(``file:line(name)``), computes per-function deltas of total time
(``tottime``: time in the function body alone) and cumulative time
(``cumtime``: body plus callees), and prints the *top-N by absolute
delta* so the biggest movers lead regardless of direction.

Produce the inputs with the perf harness::

    python -m repro bench --profile --profile-out /tmp/prof_before
    # ... apply the change ...
    python -m repro bench --profile --profile-out /tmp/prof_after
    python tools/profile_diff.py /tmp/prof_before/vanlan_cbr_120s.pstats \
        /tmp/prof_after/vanlan_cbr_120s.pstats

Functions present in only one dump are shown with a ``+`` (new in
AFTER) or ``-`` (gone in AFTER) marker: a rename or refactor moves a
function's time to a new key, and both halves of the move matter.
Caveat: cProfile inflates everything uniformly, so compare dumps
captured the same way, on the same workload, ideally on the same
quiet machine.
"""

import argparse
import pathlib
import pstats
import sys


def load_totals(path):
    """``{key: (calls, tottime, cumtime)}`` for every function."""
    stats = pstats.Stats(str(path))
    totals = {}
    for key, (cc, nc, tottime, cumtime, _callers) in stats.stats.items():
        totals[key] = (nc, tottime, cumtime)
    return totals


def format_key(key):
    filename, line, name = key
    filename = str(filename)
    # Strip everything up to the package root for readability.
    for marker in ("/src/", "/lib/"):
        idx = filename.rfind(marker)
        if idx >= 0:
            filename = filename[idx + 1:]
            break
    else:
        filename = pathlib.Path(filename).name
    return f"{filename}:{line}({name})"


def diff_rows(before, after):
    """One row per function seen in either dump, keyed deltas."""
    rows = []
    for key in set(before) | set(after):
        b_calls, b_tot, b_cum = before.get(key, (0, 0.0, 0.0))
        a_calls, a_tot, a_cum = after.get(key, (0, 0.0, 0.0))
        marker = " "
        if key not in before:
            marker = "+"
        elif key not in after:
            marker = "-"
        rows.append({
            "key": key,
            "marker": marker,
            "calls": (b_calls, a_calls),
            "tottime": (b_tot, a_tot, a_tot - b_tot),
            "cumtime": (b_cum, a_cum, a_cum - b_cum),
        })
    return rows


def print_diff(rows, sort="tottime", top=25, min_delta=0.0,
               stream=sys.stdout):
    rows = [row for row in rows
            if abs(row[sort][2]) >= min_delta]
    rows.sort(key=lambda row: -abs(row[sort][2]))
    total = sum(row[sort][2] for row in rows)
    print(f"{'delta':>9s} {'before':>9s} {'after':>9s} "
          f"{'calls b->a':>15s}  function  [{sort}]", file=stream)
    for row in rows[:top]:
        b, a, delta = row[sort]
        b_calls, a_calls = row["calls"]
        print(f"{delta:+9.3f} {b:9.3f} {a:9.3f} "
              f"{b_calls:>7d}->{a_calls:<7d} "
              f"{row['marker']}{format_key(row['key'])}", file=stream)
    shown = min(top, len(rows))
    print(f"-- {shown}/{len(rows)} functions shown; net {sort} "
          f"delta across all {len(rows)}: {total:+.3f} s", file=stream)


def main(argv=None):
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    parser.add_argument("before", type=pathlib.Path,
                        help="baseline .pstats dump")
    parser.add_argument("after", type=pathlib.Path,
                        help="candidate .pstats dump")
    parser.add_argument("--top", type=int, default=25,
                        help="rows to print (by |delta|)")
    parser.add_argument("--sort", choices=("tottime", "cumtime"),
                        default="tottime",
                        help="which time delta ranks the rows")
    parser.add_argument("--min-delta", type=float, default=0.0,
                        help="hide rows with |delta| below this "
                             "many seconds")
    args = parser.parse_args(argv)
    for path in (args.before, args.after):
        if not path.exists():
            parser.error(f"no such profile dump: {path}")
    rows = diff_rows(load_totals(args.before), load_totals(args.after))
    print_diff(rows, sort=args.sort, top=args.top,
               min_delta=args.min_delta)
    return 0


if __name__ == "__main__":
    sys.exit(main())
