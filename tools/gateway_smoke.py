#!/usr/bin/env python
"""Chaos gate for the HTTP experiment gateway (PR 9 contract).

Four passes against real ``python -m repro serve --http`` subprocesses
on the loopback interface:

1. **Kill-and-resubmit chaos.**  A reference sweep runs on a clean
   server; a second server is ``kill -9``'d mid-sweep, restarted on
   the same port + store, and the same spec resubmitted through the
   retrying client.  The recovered results must be bit-identical to
   the reference (per-trip SHA-256 digests) with warm per-trip store
   hits, and a post-restart resubmission must be a whole-job cache
   hit (``cached: true``) — the crash cost at most the interrupted
   trip.
2. **Malformed/slow-request fuzz.**  Garbage start-lines, bad
   versions, oversized start-lines/headers/bodies, broken
   Content-Length, chunked bodies, slow-loris trickles, and abrupt
   mid-request disconnects.  Every shape must map to the documented
   4xx/5xx JSON error (or a clean close) — never a hang, never a
   traceback.
3. **Overload burst.**  Concurrent submissions against ``--workers 1
   --queue-limit 2`` must surface 429 + ``Retry-After`` (and a
   connection flood against ``--max-connections`` an immediate 503),
   and every spec must still complete once the retrying clients ride
   out the burst.
4. **Graceful drain.**  SIGTERM mid-job flips ``/readyz`` to 503,
   the in-flight job reaches a terminal state, and the server exits 0.

Every server's stderr is scanned for tracebacks at teardown; a single
``Traceback`` anywhere fails the gate.  Exits 0 with a skip message
if loopback sockets are unavailable in the sandbox.
"""

import http.client
import json
import os
import pathlib
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
SRC = str(REPO_ROOT / "src")
sys.path.insert(0, SRC)

from repro.gateway.client import RetryingClient  # noqa: E402

#: Sweep spec for the chaos pass: long enough that the kill lands
#: mid-sweep, short enough for CI.
CHAOS_SPEC = {"trips": 4, "duration_s": 10.0, "testbed_seed": 0,
              "seed0": 0}


def _free_port():
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


class ServerHandle:
    """One gateway subprocess with captured stderr."""

    def __init__(self, port, store_dir, extra_args=(), label="server"):
        self.label = label
        self.stderr_path = tempfile.NamedTemporaryFile(
            mode="w+", suffix=f"-{label}.stderr", delete=False)
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + (os.pathsep + env["PYTHONPATH"]
                                   if env.get("PYTHONPATH") else "")
        if store_dir is not None:
            env["REPRO_RESULT_STORE"] = store_dir
        argv = [sys.executable, "-m", "repro", "serve",
                "--http", f"127.0.0.1:{port}"]
        if store_dir is not None:
            argv += ["--store", store_dir]
        argv += list(extra_args)
        self.proc = subprocess.Popen(argv, stdout=subprocess.PIPE,
                                     stderr=self.stderr_path, text=True,
                                     env=env)
        announce = self.proc.stdout.readline().strip()
        if "listening" not in announce:
            raise RuntimeError(f"{label} failed to boot: {announce!r}")
        self.port = int(announce.rsplit(":", 1)[1])

    def kill9(self):
        self.proc.kill()
        self.proc.wait()

    def sigterm(self, timeout=30):
        self.proc.send_signal(signal.SIGTERM)
        return self.proc.wait(timeout=timeout)

    def stderr_text(self):
        self.stderr_path.flush()
        return pathlib.Path(self.stderr_path.name).read_text()

    def assert_no_traceback(self):
        text = self.stderr_text()
        assert "Traceback" not in text, (
            f"{self.label} leaked a traceback:\n{text[-2000:]}")

    def cleanup(self):
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait()
        self.stderr_path.close()
        os.unlink(self.stderr_path.name)


def _raw_exchange(port, payload, read_timeout=5.0, expect_reply=True):
    """Send raw bytes, return the first response line (or '' on close)."""
    with socket.create_connection(("127.0.0.1", port),
                                  timeout=read_timeout) as sock:
        sock.sendall(payload)
        sock.settimeout(read_timeout)
        try:
            data = sock.recv(4096)
        except socket.timeout:
            return None  # caller decides whether a hang is a failure
        if not expect_reply:
            return data
        return data.split(b"\r\n", 1)[0].decode("latin-1") if data else ""


def _post_job(port, body, timeout=15.0):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        conn.request("POST", "/jobs", body=json.dumps(body).encode(),
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        return (response.status, dict(response.getheaders()),
                json.loads(response.read() or b"{}"))
    finally:
        conn.close()


def chaos_pass():
    print("[gateway_smoke] chaos: reference sweep on a clean server...")
    with tempfile.TemporaryDirectory(prefix="gw-ref-") as ref_store:
        server = ServerHandle(_free_port(), ref_store, ["--workers", "1"],
                              label="reference")
        try:
            client = RetryingClient("127.0.0.1", server.port)
            reference = client.submit_and_wait("vanlan_cbr_sweep",
                                               CHAOS_SPEC, timeout_s=300)
            assert reference["state"] == "done", reference
            ref_trips = reference["result"]["trips"]
            assert server.sigterm() == 0
            server.assert_no_traceback()
        finally:
            server.cleanup()

    print("[gateway_smoke] chaos: kill -9 mid-sweep, restart, resubmit...")
    with tempfile.TemporaryDirectory(prefix="gw-chaos-") as store:
        port = _free_port()
        server = ServerHandle(port, store, ["--workers", "1"],
                              label="victim")
        victim_ok = False
        try:
            client = RetryingClient("127.0.0.1", server.port,
                                    overall_timeout_s=60.0)
            job = client.submit("vanlan_cbr_sweep", CHAOS_SPEC)
            killed = False
            try:
                for event, payload in client.stream_events(
                        job["id"], read_timeout_s=120.0):
                    if event == "progress":
                        server.kill9()
                        killed = True
                        break
                    if event == "done":
                        break
            except Exception:
                pass  # the stream died with the server
            assert killed, "sweep finished before the kill; raise trips"
            server.assert_no_traceback()
            victim_ok = True
        finally:
            if not victim_ok:
                print(server.stderr_text()[-2000:])
            server.cleanup()

        server = ServerHandle(port, store, ["--workers", "1"],
                              label="restarted")
        try:
            recovered = client.submit_and_wait("vanlan_cbr_sweep",
                                               CHAOS_SPEC, timeout_s=300)
            assert recovered["state"] == "done", recovered
            rec = recovered["result"]
            assert rec["trips"] == ref_trips, (
                "post-crash digests diverged from the reference:\n"
                f"{rec['trips']}\nvs\n{ref_trips}")
            assert rec["store"]["hits"] >= 1, (
                f"no warm per-trip hits after the crash: {rec['store']}")
            assert server.sigterm() == 0
            server.assert_no_traceback()
        finally:
            server.cleanup()

        # Third boot on the same store: the whole job must be a warm
        # whole-job cache hit — zero recompute after a full restart.
        server = ServerHandle(port, store, ["--workers", "1"],
                              label="warm")
        try:
            warm = client.submit_and_wait("vanlan_cbr_sweep", CHAOS_SPEC,
                                          timeout_s=60)
            assert warm["state"] == "done" and warm["cached"], (
                f"expected a whole-job store hit after restart: {warm}")
            assert warm["result"]["trips"] == ref_trips
            assert server.sigterm() == 0
            server.assert_no_traceback()
        finally:
            server.cleanup()
    print("[gateway_smoke] chaos: recovered bit-identical with warm "
          "store hits")


def fuzz_pass():
    print("[gateway_smoke] fuzz: malformed and slow requests...")
    server = ServerHandle(_free_port(), None,
                          ["--workers", "1", "--header-timeout", "1.0",
                           "--max-body-bytes", "4096"], label="fuzz")
    port = server.port
    try:
        cases = [
            ("garbage start line", b"GARBAGE\r\n\r\n", "400"),
            ("bad version", b"GET / HTTP/9.9\r\n\r\n", "505"),
            ("bad method", b"BREW /jobs HTTP/1.1\r\n\r\n", "405"),
            ("binary junk", bytes(range(256)) + b"\r\n\r\n", "400"),
            ("oversized start line",
             b"GET /" + b"a" * 8192 + b" HTTP/1.1\r\n\r\n", "431"),
            ("header without colon",
             b"GET /healthz HTTP/1.1\r\nbroken header\r\n\r\n", "400"),
            ("header flood",
             b"GET /healthz HTTP/1.1\r\n"
             + b"".join(b"x-h%d: y\r\n" % i for i in range(200))
             + b"\r\n", "431"),
            ("bad content-length",
             b"POST /jobs HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
             "400"),
            ("oversized body",
             b"POST /jobs HTTP/1.1\r\nContent-Length: 999999\r\n\r\n",
             "413"),
            ("chunked body",
             b"POST /jobs HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
             "501"),
            ("unknown path", b"GET /nope HTTP/1.1\r\n\r\n", "404"),
            ("bad JSON body",
             b"POST /jobs HTTP/1.1\r\nContent-Length: 9\r\n\r\nnot json!",
             "400"),
            ("non-object body",
             b"POST /jobs HTTP/1.1\r\nContent-Length: 7\r\n\r\n[1,2,3]",
             "400"),
            ("unknown runner",
             b"POST /jobs HTTP/1.1\r\nContent-Length: 24\r\n\r\n"
             b'{"runner": "no-such-x"}\n', "400"),
            ("wrong method on /jobs", b"GET /jobs HTTP/1.1\r\n\r\n",
             "405"),
            ("missing job", b"GET /jobs/9999 HTTP/1.1\r\n\r\n", "404"),
        ]
        for name, payload, want in cases:
            status_line = _raw_exchange(port, payload)
            assert status_line is not None, f"{name}: server hung"
            assert f" {want} " in status_line + " ", (
                f"{name}: expected {want}, got {status_line!r}")

        # Slow-loris: trickle half a request line, then stall.  The
        # 1 s header deadline must hand the socket back with a 408.
        t0 = time.monotonic()
        with socket.create_connection(("127.0.0.1", port),
                                      timeout=10.0) as sock:
            sock.sendall(b"GET /heal")
            sock.settimeout(10.0)
            data = sock.recv(4096)
        waited = time.monotonic() - t0
        assert b" 408 " in data, f"slow-loris answer: {data[:80]!r}"
        assert waited < 8.0, f"slow-loris held the socket {waited:.1f}s"

        # Abrupt disconnects at every interesting phase.
        for fragment in (b"", b"GET", b"GET /healthz HTTP/1.1\r\n",
                         b"POST /jobs HTTP/1.1\r\nContent-Length: 50\r\n"
                         b"\r\n{\"runner\":"):
            with socket.create_connection(("127.0.0.1", port),
                                          timeout=5.0) as sock:
                if fragment:
                    sock.sendall(fragment)
            # no assertion: the pass is "server neither dies nor logs".

        # And the server is still perfectly healthy afterwards.
        client = RetryingClient("127.0.0.1", port)
        assert client.health() == {"ok": True}
        assert server.sigterm() == 0
        server.assert_no_traceback()
    finally:
        server.cleanup()
    print("[gateway_smoke] fuzz: every shape mapped to a structured "
          "4xx/5xx, zero tracebacks")


def overload_pass():
    print("[gateway_smoke] overload: burst against workers=1 "
          "queue_limit=2...")
    server = ServerHandle(_free_port(), None,
                          ["--workers", "1", "--queue-limit", "2",
                           "--max-connections", "6"], label="overload")
    port = server.port
    try:
        # Distinct specs (different seed0) so dedupe cannot absorb the
        # burst; each is a real ~0.5 s job.
        specs = [{"trips": 1, "duration_s": 6.0, "testbed_seed": 0,
                  "seed0": 100 + i} for i in range(8)]
        statuses = []
        lock = threading.Lock()

        def fire(spec):
            try:
                status, headers, _ = _post_job(
                    port, {"runner": "vanlan_cbr_sweep", "params": spec})
            except OSError:
                status, headers = -1, {}
            with lock:
                statuses.append((status, headers))

        threads = [threading.Thread(target=fire, args=(s,))
                   for s in specs]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        codes = [s for s, _ in statuses]
        assert any(code == 429 for code in codes), (
            f"burst produced no 429 backpressure: {codes}")
        for status, headers in statuses:
            if status == 429:
                retry_after = {k.lower(): v for k, v in
                               headers.items()}.get("retry-after")
                assert retry_after is not None, "429 without Retry-After"

        # Connection flood: hold sockets open past --max-connections;
        # the next connection must get an immediate 503.
        held = []
        try:
            for _ in range(6):
                held.append(socket.create_connection(
                    ("127.0.0.1", port), timeout=5.0))
            flood = _raw_exchange(port, b"GET /healthz HTTP/1.1\r\n\r\n")
            assert flood is not None and " 503 " in flood + " ", (
                f"connection flood answer: {flood!r}")
        finally:
            for sock in held:
                sock.close()

        # Eventual completion: the retrying clients ride out the
        # backpressure and every spec completes.
        finals = []

        def complete(spec):
            client = RetryingClient("127.0.0.1", port,
                                    overall_timeout_s=120.0)
            final = client.submit_and_wait(
                "vanlan_cbr_sweep", spec, timeout_s=240.0)
            with lock:
                finals.append(final)

        threads = [threading.Thread(target=complete, args=(s,))
                   for s in specs]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(finals) == len(specs)
        assert all(f["state"] == "done" for f in finals), (
            [f["state"] for f in finals])
        assert server.sigterm() == 0
        server.assert_no_traceback()
    finally:
        server.cleanup()
    print("[gateway_smoke] overload: 429/503 surfaced, all "
          f"{len(finals)} specs eventually completed")


def drain_pass():
    print("[gateway_smoke] drain: SIGTERM with a job in flight...")
    server = ServerHandle(_free_port(), None, ["--workers", "1"],
                          label="drain")
    try:
        client = RetryingClient("127.0.0.1", server.port)
        job = client.submit("vanlan_cbr_sweep",
                            {"trips": 2, "duration_s": 8.0,
                             "testbed_seed": 0, "seed0": 7})
        assert client.ready()
        # A dedicated probe with a tight deadline: once the listener
        # closes, a long retry loop would outlive the drain window.
        probe = RetryingClient("127.0.0.1", server.port,
                               overall_timeout_s=1.0, backoff_cap_s=0.1)
        server.proc.send_signal(signal.SIGTERM)
        # Readiness must flip while the in-flight job finishes.
        deadline = time.monotonic() + 10.0
        saw_not_ready = False
        while time.monotonic() < deadline:
            try:
                if not probe.ready():
                    saw_not_ready = True
                    break
            except Exception:
                break  # listener already closed — also a valid drain end
            time.sleep(0.02)
        code = server.proc.wait(timeout=60)
        assert code == 0, f"drain exited {code}"
        assert saw_not_ready, "readyz never flipped to 503 during drain"
        server.assert_no_traceback()
        _ = job  # the job either finished or was finalized terminal
    finally:
        server.cleanup()
    print("[gateway_smoke] drain: readiness flipped, clean exit 0")


def main():
    try:
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
    except OSError as exc:
        print(f"[gateway_smoke] SKIPPED: loopback sockets unavailable "
              f"in this sandbox ({exc})")
        return 0
    t0 = time.perf_counter()
    chaos_pass()
    fuzz_pass()
    overload_pass()
    drain_pass()
    print(f"[gateway_smoke] all passes green in "
          f"{time.perf_counter() - t0:.1f} s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
