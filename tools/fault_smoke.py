#!/usr/bin/env python
"""Fault-matrix smoke: every injected-fault kind completes and delivers.

Usage::

    PYTHONPATH=src python tools/fault_smoke.py [--seconds N]

Runs a short ViFi trip once per :data:`repro.experiments.faulted.
FAULT_MATRIX` cell — no-fault, BS radio outages, backplane partitions,
beacon-loss bursts — and fails if any cell raises, stalls, or drives
delivery to zero while the vehicle is reachable.  This is the CI guard
for the graceful-degradation contract: faults may degrade service but
must never crash the protocol stack or wedge the event loop.

The no-fault cell doubles as a sanity anchor: it must inject nothing
(``injected == {}``) and deliver essentially everything, so a fault
plane that leaks into the nominal world is caught here before the
(slower) bitwise digest anchors run.

Intended to run as a stage of ``tools/ci_check.py``.
"""

import argparse
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.faulted import (  # noqa: E402
    FAULT_MATRIX,
    fault_matrix_smoke,
)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seconds", type=float, default=15.0,
                        help="simulated duration per matrix cell")
    args = parser.parse_args(argv)

    t0 = time.perf_counter()
    results = fault_matrix_smoke(duration_s=args.seconds)
    wall = time.perf_counter() - t0

    failures = []
    for name in FAULT_MATRIX:
        summary = results.get(name)
        if summary is None:
            failures.append(f"{name}: cell did not complete")
            continue
        injected = ", ".join(
            f"{kind} x{count}"
            for kind, count in sorted(summary["injected"].items())
        ) or "nothing"
        print(f"{name:<12s} delivery {summary['delivery']:>6.1%}  "
              f"mos {summary['mos']:.2f}  injected {injected}")
        if summary["delivery"] <= 0.0:
            failures.append(f"{name}: delivery hit zero")
    if results.get("no-fault", {}).get("injected"):
        failures.append("no-fault cell injected faults — the fault "
                        "plane leaked into the nominal world")

    print(f"fault matrix ran in {wall:.1f} s")
    if failures:
        for failure in failures:
            print(f"FAULT SMOKE FAILED: {failure}", file=sys.stderr)
        return 1
    print("fault smoke ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
