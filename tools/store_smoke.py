#!/usr/bin/env python
"""Result-store smoke: durability, corruption, and degradation guards.

Usage::

    PYTHONPATH=src python tools/store_smoke.py [--seconds N]

Exercises the content-addressed result store (:mod:`repro.store`)
end-to-end through a real pinned sweep
(:func:`repro.experiments.common.run_trips` over short VanLAN CBR
trips) and fails if any durability property breaks:

1. **cold run** — a short pinned sweep against an empty store must
   miss for every task and write every entry;
2. **warm run** — the identical sweep must be served entirely from the
   store (all hits, zero misses, no pool) with results equal to the
   cold run;
3. **corruption injection** — a byte flipped in *every* stored payload
   must be detected on read (verify failure), quarantined to the
   sidecar, and transparently recomputed — the rerun must equal the
   cold results exactly and never raise, and the store must serve
   warm again afterwards (self-healing);
4. **degradation** — with the store root unusable (a regular file
   where the object tree should be), the sweep must still complete
   with correct results, counting ``degraded`` instead of crashing.

This is the CI guard for the PR 8 self-healing contract: a flipped
byte, a half-written file, or a dead disk may cost recomputation but
must never crash a sweep or leak a wrong result.

Intended to run as a stage of ``tools/ci_check.py``.
"""

import argparse
import pathlib
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.common import run_trips, vanlan_cbr_trip  # noqa: E402
from repro.store import ResultStore  # noqa: E402


def _flip_byte(path):
    """Flip one payload byte near the end of a stored record."""
    data = bytearray(path.read_bytes())
    data[-3] ^= 0xFF
    path.write_bytes(bytes(data))


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seconds", type=float, default=8.0,
                        help="simulated duration per trip")
    parser.add_argument("--trips", type=int, default=2,
                        help="number of pinned trips in the sweep")
    args = parser.parse_args(argv)

    tasks = [
        {"trip": trip, "seed": trip, "duration_s": float(args.seconds),
         "testbed_seed": 0}
        for trip in range(max(int(args.trips), 1))
    ]
    n = len(tasks)
    failures = []
    t0 = time.perf_counter()
    with tempfile.TemporaryDirectory(prefix="repro-store-smoke-") as tmp:
        store = ResultStore(pathlib.Path(tmp) / "store")

        def sweep(target=store):
            return run_trips(vanlan_cbr_trip, tasks, workers=1,
                             store=target)

        # 1. Cold run: all misses, one write per task.
        cold = sweep()
        print(f"cold: {cold.store}, entries {store.entry_count()}")
        if cold.store["hits"] or cold.store["misses"] != n \
                or cold.store["writes"] != n:
            failures.append(f"cold-run counters off: {cold.store}")

        # 2. Warm run: all hits, identical results.
        warm = sweep()
        print(f"warm: {warm.store}")
        if warm.store["hits"] != n or warm.store["misses"]:
            failures.append(f"warm run not fully cached: {warm.store}")
        if list(warm) != list(cold):
            failures.append("warm results differ from cold results")

        # 3. Flip a byte in every entry: quarantine + recompute, results
        #    equal to the cold run, no exception.
        entries = list(store.iter_entries())
        if len(entries) != n:
            failures.append(f"expected {n} entries, found {len(entries)}")
        for _key, path in entries:
            _flip_byte(pathlib.Path(path))
        healed = sweep()
        print(f"corrupt: {healed.store}, "
              f"sidecar {store.quarantine_count()}")
        if healed.store["verify_failures"] != n \
                or healed.store["quarantined"] != n \
                or healed.store["writes"] != n:
            failures.append(f"corruption not fully detected/recomputed: "
                            f"{healed.store}")
        if list(healed) != list(cold):
            failures.append("recomputed results differ from cold run — "
                            "corruption leaked into results")
        if store.quarantine_count() != n:
            failures.append("quarantine sidecar does not hold the "
                            "corrupt entries")

        # 3b. The healed store must serve warm again.
        again = sweep()
        if again.store["hits"] != n or list(again) != list(cold):
            failures.append(f"store did not heal after quarantine: "
                            f"{again.store}")

        # 4. Unusable store root (a regular file where the object tree
        #    should be): the sweep must degrade to computing, not die.
        blocker = pathlib.Path(tmp) / "blocker"
        blocker.write_text("not a directory\n")
        broken = ResultStore(blocker / "store")
        degraded = sweep(target=broken)
        print(f"degraded: {degraded.store['degraded']!r}")
        if list(degraded) != list(cold):
            failures.append("degraded sweep returned different results")
        if not degraded.store["degraded"]:
            failures.append("unusable store root was not flagged degraded")
        if degraded.store["hits"]:
            failures.append("degraded store claimed cache hits")

    wall = time.perf_counter() - t0
    print(f"store smoke ran in {wall:.1f} s")
    if failures:
        for failure in failures:
            print(f"STORE SMOKE FAILED: {failure}", file=sys.stderr)
        return 1
    print("store smoke ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
