#!/usr/bin/env python
"""Perf smoke check: run the pinned workloads, track, gate regressions.

Usage::

    PYTHONPATH=src python tools/perf_smoke.py [--repeats N]
        [--tolerance 0.2] [--no-write]

Runs the pinned perf workloads (see ``repro.experiments.perf``),
compares events/sec against the committed ``BENCH_perf.json``, rewrites
the file with the fresh numbers, and exits non-zero when any workload
regressed by more than ``--tolerance`` (default 20%).  Intended as the
CI perf gate: wall-clock noise on shared runners is absorbed by the
tolerance and the best-of-``--repeats`` policy.

Also available as ``python -m repro bench``.
"""

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.perf import (  # noqa: E402
    BENCH_PATH,
    run_perf_suite,
    write_bench_file,
)


def check_regressions(results, committed, tolerance):
    """Return a list of human-readable regression messages."""
    failures = []
    previous = {
        entry["workload"]: entry
        for entry in committed.get("workloads", [])
    }
    for record in results:
        old = previous.get(record["workload"])
        if old is None:
            continue
        floor = old["events_per_s"] * (1.0 - tolerance)
        if record["events_per_s"] < floor:
            failures.append(
                f"{record['workload']}: {record['events_per_s']:.0f} ev/s "
                f"< {floor:.0f} (committed {old['events_per_s']:.0f} "
                f"- {tolerance:.0%} tolerance)"
            )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=2,
                        help="measurements per workload; best is kept")
    parser.add_argument("--tolerance", type=float, default=0.2,
                        help="allowed fractional events/sec regression")
    parser.add_argument("--no-write", action="store_true",
                        help="measure and compare without rewriting "
                             "BENCH_perf.json")
    args = parser.parse_args(argv)

    committed = {}
    if BENCH_PATH.exists():
        with open(BENCH_PATH) as handle:
            committed = json.load(handle)

    results = run_perf_suite(repeats=args.repeats)
    for record in results:
        speedup = record.get("speedup_vs_baseline")
        extra = f"  ({speedup}x vs seed baseline)" if speedup else ""
        print(f"{record['workload']:<20s} {record['events']:>7d} events  "
              f"{record['wall_s']:>8.3f} s  "
              f"{record['events_per_s']:>9.0f} ev/s{extra}")

    failures = check_regressions(results, committed, args.tolerance)
    if failures:
        # Keep the committed baseline intact so re-runs still fail
        # against the good numbers instead of a ratcheted-down file.
        for failure in failures:
            print(f"PERF REGRESSION: {failure}", file=sys.stderr)
        print("BENCH_perf.json left untouched (regression)",
              file=sys.stderr)
        return 1
    if not args.no_write:
        path = write_bench_file(results)
        print(f"wrote {path}")
    print("perf smoke ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
