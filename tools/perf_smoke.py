#!/usr/bin/env python
"""Perf smoke check: run the pinned workloads, track, gate regressions.

Usage::

    PYTHONPATH=src python tools/perf_smoke.py [--repeats N]
        [--tolerance 0.2] [--no-write] [--no-scaling]
        [--profile [--profile-top N] [--profile-sort KEY]
         [--profile-out DIR]]

Runs the pinned perf workloads plus the multi-trip scaling sweep (see
``repro.experiments.perf``), prints the per-workload deltas against the
committed ``BENCH_perf.json``, rewrites the file with the fresh
numbers, and exits non-zero when any workload regressed by more than
``--tolerance`` (default 20%) on a tracked rate, when the parallel
sweep's outputs diverge from the serial sweep, or when the shared
propagation banks stop reproducing per-task banks bit for bit.
Intended as the CI perf gate: wall-clock noise on shared runners is
absorbed by the tolerance and the best-of-``--repeats`` policy —
``--repeats 1`` (the default) is fine for a quick look, but **gating
runs should use ``--repeats 3``** (what ``tools/ci_check.py`` passes)
so the ±10% container noise does not eat the regression headroom.
Simulation build cost (testbed, link table, bank prefill) is reported
as its own ``build_s``/``prefill_s`` fields and never charged to the
timed region.  Each workload also records the reception-estimator
mode it ran under (``estimator``) and the wall spent in the array
bank's single per-second vectorized fold (``estimator_fold_s``).

The scaling entry records whether the parallel-speedup target was
enforced; on hosts without four free cores the recorded
``parallel_gate`` spells out the skip reason (e.g. ``available_workers:
1``) so a sub-1.0 speedup reads as pool overhead, not a regression.
It also records the shared-bank economics: ``bank_build_s`` (one
prefilled bank per trip, built once), ``bank_share_hit_rate``, and
``bank_share_task_speedup`` (per-task wall with shared vs per-task
banks).

``--profile`` skips gating and instead runs each pinned workload under
cProfile, printing the top-N functions per workload — the residual
profile future perf PRs cite.  ``--profile-out DIR`` additionally
writes one ``<workload>.pstats`` file per workload into *DIR* so
profiles can be diffed across PRs with :mod:`pstats` tooling.

A committed file whose workloads do not match the current pinned set
(renamed or newly added workloads) is reported clearly and does not
gate — fresh numbers simply establish the new baseline.

Also available as ``python -m repro bench``.
"""

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.perf import (  # noqa: E402
    BENCH_PATH,
    WORKLOADS,
    profile_workload,
    run_perf_suite,
    run_trip_scaling,
    write_bench_file,
)

#: Rates gated against the committed numbers (higher is better).
#: ``sim_s_per_wall_s`` always gates (the workload-level metric the
#: speedup targets are defined on).  ``events_per_s`` only gates when
#: the pinned event count is still comparable: a fast path that
#: *removes* heap events (merged transmissions, backoff freezing)
#: legitimately lowers ev/s while making the run faster, and must not
#: read as a regression.
TRACKED_RATES = ("events_per_s", "sim_s_per_wall_s")

#: Relative event-count change beyond which events_per_s stops gating
#: (the workload was restructured, not slowed down).
EVENT_COUNT_COMPARABLE = 0.02


def _delta(new, old):
    """Signed fractional change, or ``None`` when either is missing."""
    if not new or not old:
        return None
    return new / old - 1.0


def compare_to_committed(results, committed, tolerance):
    """Compare fresh records to the committed file.

    Returns:
        ``(failures, notes)`` — failure strings gate the exit code;
        notes describe schema drift (missing / renamed / unmeasured
        workloads) without failing the check.
    """
    failures = []
    notes = []
    committed_workloads = committed.get("workloads")
    if committed_workloads is None:
        if committed:
            notes.append("committed BENCH_perf.json has no 'workloads' "
                         "entry; treating every workload as new")
        return failures, notes
    previous = {}
    for entry in committed_workloads:
        name = entry.get("workload")
        if name is None:
            notes.append("committed entry without a 'workload' name "
                         "ignored")
            continue
        previous[name] = entry
    measured = {record["workload"] for record in results}
    for name in sorted(set(previous) - measured):
        notes.append(
            f"committed workload {name!r} is not in the current pinned "
            f"set (renamed or retired); its baseline will be dropped "
            f"on rewrite"
        )
    for record in results:
        name = record["workload"]
        old = previous.get(name)
        if old is None:
            notes.append(f"workload {name!r} has no committed baseline "
                         f"yet; recording fresh numbers")
            continue
        for rate in TRACKED_RATES:
            delta = _delta(record.get(rate), old.get(rate))
            if delta is None:
                if rate not in old:
                    notes.append(
                        f"{name}: committed entry lacks {rate!r} "
                        f"(older schema); not gated on it"
                    )
                continue
            if delta < -tolerance:
                if rate == "events_per_s":
                    old_events = old.get("events")
                    new_events = record.get("events")
                    if old_events and new_events and abs(
                        new_events / old_events - 1.0
                    ) > EVENT_COUNT_COMPARABLE:
                        notes.append(
                            f"{name}: events_per_s {delta:+.1%} with "
                            f"the event count restructured "
                            f"({old_events} -> {new_events}); gating "
                            f"on sim_s_per_wall_s only"
                        )
                        continue
                failures.append(
                    f"{name}: {rate} {record[rate]:.1f} is "
                    f"{-delta:.1%} below committed {old[rate]:.1f} "
                    f"(tolerance {tolerance:.0%})"
                )
    return failures, notes


def print_report(results, committed, scaling=None):
    """Per-workload summary with deltas vs the committed numbers."""
    previous = {
        entry.get("workload"): entry
        for entry in committed.get("workloads", [])
        if isinstance(entry, dict)
    }
    host = next((record.get("host") for record in results
                 if record.get("host")), None)
    if host:
        load = host.get("loadavg_1m")
        print(f"host: {host.get('cpu_count')} cpus"
              + (f", load {load}" if load is not None else "")
              + f", python {host.get('python')}"
              + f", numpy {host.get('numpy')}")
    for record in results:
        old = previous.get(record["workload"]) or {}
        deltas = []
        for rate, label in (("events_per_s", "ev/s"),
                            ("sim_s_per_wall_s", "sim-rate")):
            delta = _delta(record.get(rate), old.get(rate))
            if delta is not None:
                deltas.append(f"{label} {delta:+.1%}")
        speedup = record.get("speedup_vs_baseline")
        extra = f"  ({speedup}x vs seed)" if speedup else ""
        if deltas:
            extra += "  [" + ", ".join(deltas) + "]"
        build = record.get("build_s")
        if build is not None:
            prefill = record.get("prefill_s", 0.0)
            extra += (f"  [build {build:.3f} s"
                      + (f", prefill {prefill:.3f} s" if prefill else "")
                      + "]")
        estimator = record.get("estimator")
        if estimator is not None:
            fold = record.get("estimator_fold_s", 0.0)
            extra += (f"  [estimator {estimator}"
                      + (f", fold {fold:.3f} s" if fold else "")
                      + "]")
        print(f"{record['workload']:<20s} {record['events']:>7d} events  "
              f"{record['wall_s']:>8.3f} s  "
              f"{record['events_per_s']:>9.0f} ev/s  "
              f"{record['sim_s_per_wall_s']:>7.1f}x real{extra}")
    if scaling is not None:
        same = "identical" if scaling["outputs_identical"] else "DIVERGED"
        print(f"{scaling['workload']:<20s} {scaling['n_trips']} trips x "
              f"{scaling['trip_duration_s']:.0f} s  serial "
              f"{scaling['serial_wall_s']:.3f} s  parallel "
              f"{scaling['parallel_wall_s']:.3f} s on "
              f"{scaling['workers']} workers "
              f"({scaling['parallel_speedup']}x, outputs {same})")
        if "bank_build_s" in scaling:
            shared = "bit-identical" \
                if scaling.get("shared_bank_identical") else "DIVERGED"
            print(f"{'':<20s} shared banks built once in "
                  f"{scaling['bank_build_s']:.3f} s  hit rate "
                  f"{scaling['bank_share_hit_rate']:.0%}  per-task "
                  f"{scaling['per_task_s_fresh_bank']:.3f} s -> "
                  f"{scaling['per_task_s_shared_bank']:.3f} s "
                  f"({scaling['bank_share_task_speedup']}x, "
                  f"outputs {shared})")
        gate = scaling.get("parallel_gate")
        if gate and gate != "enforced":
            print(f"{'':<20s} parallel-speedup target {gate}")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=1,
                        help="measurements per workload; best is kept "
                             "(use 3 for gating runs so container "
                             "wall-clock noise does not eat the "
                             "regression headroom)")
    parser.add_argument("--tolerance", type=float, default=0.2,
                        help="allowed fractional rate regression")
    parser.add_argument("--no-write", action="store_true",
                        help="measure and compare without rewriting "
                             "BENCH_perf.json")
    parser.add_argument("--no-scaling", action="store_true",
                        help="skip the multi-trip scaling sweep")
    parser.add_argument("--profile", action="store_true",
                        help="cProfile each pinned workload and print "
                             "the top functions instead of gating")
    parser.add_argument("--profile-top", type=int, default=25,
                        help="rows per workload in --profile output")
    parser.add_argument("--profile-sort", default="cumulative",
                        help="pstats sort key for --profile "
                             "(e.g. cumulative, tottime)")
    parser.add_argument("--profile-out", metavar="DIR", default=None,
                        help="with --profile, also write one "
                             "<workload>.pstats file per workload "
                             "into DIR (created if missing) so "
                             "profiles can be diffed across PRs")
    args = parser.parse_args(argv)

    if args.profile:
        out_dir = None
        if args.profile_out is not None:
            out_dir = pathlib.Path(args.profile_out)
            out_dir.mkdir(parents=True, exist_ok=True)
        for name in WORKLOADS:
            dump = str(out_dir / f"{name}.pstats") if out_dir else None
            header, report = profile_workload(
                name, top=args.profile_top, sort=args.profile_sort,
                dump_path=dump,
            )
            print(f"== {header}")
            print(report)
            if dump:
                print(f"profile stats written to {dump}")
        return 0
    if args.profile_out is not None:
        parser.error("--profile-out requires --profile")

    committed = {}
    if BENCH_PATH.exists():
        try:
            with open(BENCH_PATH) as handle:
                committed = json.load(handle)
        except ValueError as error:
            print(f"committed BENCH_perf.json is unreadable ({error}); "
                  f"treating as empty", file=sys.stderr)

    results = run_perf_suite(repeats=args.repeats)
    scaling = None if args.no_scaling else run_trip_scaling()
    print_report(results, committed, scaling)

    failures, notes = compare_to_committed(results, committed,
                                           args.tolerance)
    for note in notes:
        print(f"note: {note}")
    if scaling is not None and not scaling["outputs_identical"]:
        failures.append("parallel multi-trip sweep outputs diverged "
                        "from the serial sweep")
    if scaling is not None and not scaling.get("shared_bank_identical",
                                               True):
        failures.append("shared propagation banks diverged from "
                        "per-task banks")
    if failures:
        # Keep the committed baseline intact so re-runs still fail
        # against the good numbers instead of a ratcheted-down file.
        for failure in failures:
            print(f"PERF REGRESSION: {failure}", file=sys.stderr)
        print("BENCH_perf.json left untouched (regression)",
              file=sys.stderr)
        return 1
    if not args.no_write:
        path = write_bench_file(results, scaling=scaling)
        print(f"wrote {path}")
    print("perf smoke ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
