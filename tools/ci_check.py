#!/usr/bin/env python
"""Single CI entry point: tier-1 tests, slow equivalence tests, perf gate.

Usage::

    python tools/ci_check.py [--fast] [--skip-bench] [--skip-slow]

Runs, in order:

1. the tier-1 test suite (``pytest -x -q`` — fast tests only; the
   ``slow`` and ``bench`` markers are excluded by ``pytest.ini``),
2. the invariant lint (``python -m repro lint``): the PR 10 static
   rules over the determinism, store-key, and concurrency contracts
   (see ``INVARIANTS.md``).  The stage prints per-rule finding counts
   plus baselined/pragma-suppressed totals, so lint drift is visible
   in the gate output even when the gate passes,
3. the slow correctness tests (``pytest -m slow``): the banked-vs-
   scalar and batching equivalence properties, the PR 3 array-kernel /
   backoff-freezing CSMA equivalence suite
   (``tests/test_perf_kernel.py`` — full-trip array==scalar bitwise
   equality and freeze-vs-defer protocol equivalence), the PR 4
   sampling-convention suite (``tests/test_perf_prefill.py`` — the
   first-query mode's full-trip bitwise anchor and the bucket-centre /
   slot-batch distributional equivalences), the PR 5 estimator
   suite (``tests/test_estimator_bank.py`` — the dict mode's full-trip
   digest anchor to the PR 4 committed realization and the array
   bank's distributional equivalence), and the PR 6 pre-draw /
   bookkeeping suites (``tests/test_perf_kernel.py`` — the
   ``medium_interval_predraw=False`` full-trip digest anchor to the
   PR 5 committed realization and the pre-drawn plane's
   distributional equivalence; ``tests/test_packet_bank.py`` — the
   ring/bitmap relay bookkeeping's long-schedule oracle equality
   against the dict reference).  The stage fails if the slow marker
   collects nothing, so a marker typo cannot silently skip the
   suite,
4. the fault-matrix smoke (``tools/fault_smoke.py``): one short ViFi
   trip per injected-fault kind (no-fault, BS outage, backplane
   partition, beacon-loss burst) — every cell must complete without
   error and keep delivery above zero while the vehicle is reachable
   (the PR 7 graceful-degradation contract),
5. the result-store smoke (``tools/store_smoke.py``): a pinned sweep
   run cold, warm, with every stored byte-flipped entry quarantined
   and recomputed, and against an unusable store root — the PR 8
   self-healing contract (corruption and dead media cost
   recomputation, never a crash or a wrong result),
6. the gateway chaos smoke (``tools/gateway_smoke.py``): the PR 9
   wire-transport contract — a ``kill -9`` mid-sweep, restart, and
   idempotent resubmission must end bit-identical with warm store
   hits; malformed/slow/oversized requests must map to structured
   4xx/5xx; an overload burst must surface 429/503 and still
   complete; SIGTERM must drain gracefully.  Zero server tracebacks
   throughout.  Skips itself (exit 0, with the reason) when loopback
   sockets are unavailable,
7. the perf gate (``python -m repro bench --repeats 3`` via
   ``tools/perf_smoke.py``), which rewrites ``BENCH_perf.json`` and
   fails on a >20% tracked-rate regression against the committed
   numbers (best-of-3 so container wall-clock noise does not eat the
   headroom).

``--fast`` is the inner-loop variant: tier-1, the invariant lint, and
the perf gate, skipping the slow equivalence suite (equivalent to
``--skip-slow``; run the full check before merging).

Exits non-zero as soon as a stage fails, and prints a one-line summary
per stage either way.
"""

import argparse
import pathlib
import subprocess
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


def _run(label, argv, env_src=True):
    import os
    env = dict(os.environ)
    if env_src:
        src = str(REPO_ROOT / "src")
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src if not existing \
            else src + os.pathsep + existing
    t0 = time.perf_counter()
    result = subprocess.run(argv, cwd=REPO_ROOT, env=env)
    wall = time.perf_counter() - t0
    status = "ok" if result.returncode == 0 else \
        f"FAILED (exit {result.returncode})"
    print(f"[ci_check] {label}: {status} in {wall:.1f} s", flush=True)
    return result.returncode


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true",
                        help="inner-loop mode: tier-1 + perf gate only "
                             "(skips the slow equivalence suite)")
    parser.add_argument("--skip-slow", action="store_true",
                        help="skip the slow equivalence tests")
    parser.add_argument("--skip-bench", action="store_true",
                        help="skip the perf gate")
    args = parser.parse_args(argv)

    stages = [
        ("tier-1 tests",
         [sys.executable, "-m", "pytest", "-x", "-q"]),
        ("invariant lint (python -m repro lint)",
         [sys.executable, "-m", "repro", "lint"]),
    ]
    if not (args.skip_slow or args.fast):
        stages.append((
            "slow equivalence tests",
            [sys.executable, "-m", "pytest", "-q", "-m", "slow",
             "--override-ini", "addopts="],
        ))
    stages.append((
        "fault-matrix smoke",
        [sys.executable, str(REPO_ROOT / "tools" / "fault_smoke.py")],
    ))
    stages.append((
        "result-store smoke",
        [sys.executable, str(REPO_ROOT / "tools" / "store_smoke.py")],
    ))
    stages.append((
        "gateway chaos smoke",
        [sys.executable, str(REPO_ROOT / "tools" / "gateway_smoke.py")],
    ))
    if not args.skip_bench:
        stages.append((
            "perf gate (python -m repro bench --repeats 3)",
            [sys.executable, "-m", "repro", "bench", "--repeats", "3"],
        ))

    for label, cmd in stages:
        code = _run(label, cmd)
        if code != 0:
            return code
    print("[ci_check] all stages passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
